#ifndef PREQR_SERVING_CLIENT_H_
#define PREQR_SERVING_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace preqr::serving {

// Per-request knobs mirrored onto the wire (serving/wire.h): tenant
// routing, the relative deadline, the admission-control identity, and the
// priority class.
struct WireRequestOptions {
  // Which hosted database serves this query; "" = the default tenant.
  // Unknown ids come back as kNotFound.
  std::string tenant_id;
  int64_t timeout_us = -1;  // < 0 = no deadline
  std::string client_id;
  int priority = 0;
};

// What a remote encode returns: the embedding plus the same per-request
// observability the in-process EncodeResponse carries.
struct WireEncodeResult {
  std::vector<float> embedding;
  bool cache_hit = false;
  double queue_us = 0.0;
  double encode_us = 0.0;
};

// Blocking client for EncodeServer. One outstanding request per client —
// the protocol is strict request/reply on one stream — so each load-
// generator thread owns its own EncodeClient. Not thread-safe.
//
// Transport failures (connection refused, server shut the socket, torn
// reply) surface as kUnavailable; application errors arrive with their
// canonical code preserved from the server side (kParseError for
// malformed SQL, kResourceExhausted for shed load, kDeadlineExceeded for
// expired deadlines, ...).
class EncodeClient {
 public:
  EncodeClient() = default;
  ~EncodeClient() { Close(); }

  EncodeClient(const EncodeClient&) = delete;
  EncodeClient& operator=(const EncodeClient&) = delete;

  Status Connect(int port, const std::string& host = "127.0.0.1");
  void Close();
  bool connected() const { return fd_ >= 0; }

  StatusOr<WireEncodeResult> Encode(const std::string& sql,
                                    const WireRequestOptions& options = {});
  // Slot i corresponds to sqls[i]; slots fail independently.
  std::vector<StatusOr<WireEncodeResult>> EncodeBatch(
      const std::vector<std::string>& sqls,
      const WireRequestOptions& options = {});
  // The server's Prometheus-style metrics snapshot.
  StatusOr<std::string> Metrics();
  // Hot-reloads one tenant's model from a checkpoint path *on the server's
  // filesystem*. The default overload reloads the default tenant.
  Status ReloadModel(const std::string& path) {
    return ReloadModel("", path);
  }
  Status ReloadModel(const std::string& tenant_id, const std::string& path);

 private:
  // Sends one framed request payload and reads one framed reply.
  StatusOr<std::string> RoundTrip(const std::string& payload);

  int fd_ = -1;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_CLIENT_H_
