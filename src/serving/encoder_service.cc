#include "serving/encoder_service.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "nn/serialize.h"

namespace preqr::serving {
namespace {

using Clock = DeadlineClock;

double ElapsedUs(Clock::time_point since, Clock::time_point until) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(until - since)
             .count() /
         1000.0;
}

double ElapsedUs(Clock::time_point since) {
  return ElapsedUs(since, Clock::now());
}

// Cached embeddings are shared across callers; hand out detached copies so
// a caller mutating its tensor cannot corrupt the cache (or another
// caller's view). Under the guard the copy draws from the BufferPool.
nn::Tensor DetachedCopy(const nn::Tensor& t) {
  nn::NoGradGuard no_grad;
  return t.Detach();
}

}  // namespace

EncoderService::EncoderService(baselines::QueryEncoder* encoder,
                               EncoderServiceOptions options)
    : encoder_(encoder),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      ring_(options.ring_capacity) {
  // Derived admission knobs work off the *rounded* ring capacity so the
  // documented fractions hold for any requested size.
  const size_t cap = ring_.capacity();
  per_client_quota_ = options.per_client_quota > 0
                          ? options.per_client_quota
                          : std::max<size_t>(1, cap / 4);
  const size_t reserve =
      options.priority_reserve > 0 ? options.priority_reserve : cap / 4;
  admit_watermark_ = reserve >= cap ? 0 : cap - reserve;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

EncoderService::~EncoderService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

size_t EncoderService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return ring_.size();
}

std::optional<StatusOr<EncodeResponse>> EncoderService::AdmitOrResolve(
    EncodeRequest&& request, std::future<StatusOr<EncodeResponse>>* future) {
  metrics_.requests.Increment();
  const auto t0 = Clock::now();
  // A dead-on-arrival deadline never touches the cache or the ring: the
  // caller has already given up, the cheapest correct answer is "no".
  if (request.deadline <= t0) {
    metrics_.deadline_rejected.Increment();
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  if (auto hit = cache_.Get(request.sql)) {
    metrics_.cache_hits.Increment();
    EncodeResponse response;
    response.embedding = DetachedCopy(*hit);
    response.cache_hit = true;
    metrics_.hit_latency_us.Observe(ElapsedUs(t0));
    return StatusOr<EncodeResponse>(std::move(response));
  }
  metrics_.cache_misses.Increment();
  auto pending = std::make_shared<Pending>();
  pending->sql = std::move(request.sql);
  pending->deadline = request.deadline;
  pending->client_id = std::move(request.client_id);
  *future = pending->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    // A reload drain parks admissions instead of dropping them: nothing is
    // lost, the swap just gets a quiesced ring. Deadlines keep ticking.
    if (draining_ && !stopping_) {
      metrics_.drain_waiters.Increment();
      if (pending->deadline == kNoDeadline) {
        queue_cv_.wait(lock, [&] { return !draining_ || stopping_; });
      } else if (!queue_cv_.wait_until(lock, pending->deadline, [&] {
                   return !draining_ || stopping_;
                 })) {
        metrics_.deadline_rejected.Increment();
        return Status::DeadlineExceeded("deadline expired during reload drain");
      }
    }
    if (stopping_) {
      metrics_.rejected_on_shutdown.Increment();
      return Status::Unavailable("encoder service is shutting down");
    }
    // Admission control, cheapest check first. Every rejection is
    // kResourceExhausted — distinguishable from malformed SQL (kParseError
    // / kInvalidArgument) and from expired deadlines (kDeadlineExceeded).
    if (ring_.full()) {
      metrics_.shed_queue_full.Increment();
      return Status::ResourceExhausted("request ring full");
    }
    if (ring_.size() >= admit_watermark_ && request.priority <= 0) {
      metrics_.shed_low_priority.Increment();
      return Status::ResourceExhausted(
          "request ring past high water; slot reserved for priority > 0");
    }
    auto [it, inserted] = queued_per_client_.try_emplace(pending->client_id, 0);
    if (it->second >= per_client_quota_) {
      if (inserted) queued_per_client_.erase(it);
      metrics_.shed_client_quota.Increment();
      return Status::ResourceExhausted("client '" + pending->client_id +
                                       "' exceeded its queued-request quota");
    }
    ++it->second;
    pending->enqueued_at = Clock::now();
    PREQR_CHECK(ring_.TryPush(pending));
    metrics_.queue_depth.Increment();
  }
  queue_cv_.notify_all();
  return std::nullopt;
}

StatusOr<EncodeResponse> EncoderService::Encode(const EncodeRequest& request) {
  std::future<StatusOr<EncodeResponse>> future;
  EncodeRequest copy = request;
  if (auto resolved = AdmitOrResolve(std::move(copy), &future)) {
    return *std::move(resolved);
  }
  return future.get();
}

std::future<StatusOr<EncodeResponse>> EncoderService::Submit(
    EncodeRequest request) {
  std::future<StatusOr<EncodeResponse>> future;
  if (auto resolved = AdmitOrResolve(std::move(request), &future)) {
    std::promise<StatusOr<EncodeResponse>> ready;
    ready.set_value(*std::move(resolved));
    return ready.get_future();
  }
  return future;
}

StatusOr<nn::Tensor> EncoderService::Encode(const std::string& sql) {
  EncodeRequest request;
  request.sql = sql;
  auto response = Encode(request);
  if (!response.ok()) return response.status();
  return std::move(response.value().embedding);
}

void EncoderService::DispatchLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    Clock::time_point popped_at;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !ring_.empty(); });
      if (stopping_) {
        // Fail whatever is still queued; nobody blocks on a dead service.
        std::shared_ptr<Pending> p;
        while (ring_.TryPop(&p)) {
          metrics_.queue_depth.Decrement();
          metrics_.rejected_on_shutdown.Increment();
          p->promise.set_value(
              Status::Unavailable("encoder service destroyed"));
        }
        return;
      }
      if (options_.batch_window.count() > 0 &&
          ring_.size() < static_cast<size_t>(options_.max_batch_size)) {
        // Wait for the batch to fill, but never past the earliest queued
        // deadline — an expired request must be dropped, not slept over.
        auto wake = Clock::now() + options_.batch_window;
        for (size_t i = 0; i < ring_.size(); ++i) {
          wake = std::min(wake, ring_.Peek(i)->deadline);
        }
        queue_cv_.wait_until(lock, wake, [&] {
          return stopping_ ||
                 ring_.size() >= static_cast<size_t>(options_.max_batch_size);
        });
        if (stopping_) continue;  // top of loop fails the queue
      }
      popped_at = Clock::now();
      std::shared_ptr<Pending> p;
      while (batch.size() < static_cast<size_t>(options_.max_batch_size) &&
             ring_.TryPop(&p)) {
        metrics_.queue_depth.Decrement();
        auto it = queued_per_client_.find(p->client_id);
        if (it != queued_per_client_.end() && --it->second == 0) {
          queued_per_client_.erase(it);
        }
        // Deadline propagation into the micro-batcher: expired requests
        // are dropped here, before encoding, not discovered afterwards.
        if (p->deadline <= popped_at) {
          metrics_.deadline_dropped.Increment();
          p->promise.set_value(
              Status::DeadlineExceeded("deadline expired while queued"));
          continue;
        }
        batch.push_back(std::move(p));
      }
      if (batch.empty()) {
        if (ring_.empty()) {
          lock.unlock();
          queue_cv_.notify_all();  // a drain may be waiting for empty
        }
        continue;
      }
      inflight_ = true;
    }
    std::vector<std::string> sqls;
    sqls.reserve(batch.size());
    for (const auto& p : batch) sqls.push_back(p->sql);
    const auto encode_t0 = Clock::now();
    auto results = EncodeLocked(sqls);
    const double encode_us = ElapsedUs(encode_t0);
    metrics_.batches.Increment();
    metrics_.batch_size.Observe(static_cast<double>(batch.size()));
    metrics_.batch_occupancy_pct.Observe(
        100.0 * static_cast<double>(batch.size()) /
        static_cast<double>(options_.max_batch_size));
    metrics_.batched_queries.Increment(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const double queue_us = ElapsedUs(batch[i]->enqueued_at, popped_at);
      metrics_.queue_latency_us.Observe(queue_us);
      metrics_.encode_latency_us.Observe(ElapsedUs(batch[i]->enqueued_at));
      if (!results[i].ok()) {
        metrics_.errors.Increment();
        batch[i]->promise.set_value(results[i].status());
        continue;
      }
      EncodeResponse response;
      response.embedding = std::move(results[i].value());
      response.cache_hit = false;
      response.queue_us = queue_us;
      response.encode_us = encode_us;
      batch[i]->promise.set_value(std::move(response));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      inflight_ = false;
    }
    queue_cv_.notify_all();
  }
}

std::vector<StatusOr<nn::Tensor>> EncoderService::EncodeLocked(
    const std::vector<std::string>& sqls) {
  std::lock_guard<std::mutex> lock(encode_mu_);
  // Serving encodes are pure inference: no tape on this thread regardless
  // of which QueryEncoder implementation sits behind the interface.
  nn::NoGradGuard no_grad;
  auto results = encoder_->TryEncodeVectorBatch(sqls, /*train=*/false);
  // Fill the cache while still holding encode_mu_, so an InvalidateCache
  // cannot slip between the encode and the insertion and leave stale
  // embeddings behind.
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (results[i].ok()) cache_.Put(sqls[i], DetachedCopy(results[i].value()));
  }
  return results;
}

std::vector<StatusOr<EncodeResponse>> EncoderService::EncodeBatch(
    const std::vector<EncodeRequest>& requests) {
  // Degenerate empty batch: nothing to do, and no latency observation —
  // an empty request must not skew the per-query histograms.
  if (requests.empty()) return {};
  metrics_.requests.Increment(requests.size());
  const auto t0 = Clock::now();
  const size_t n = requests.size();
  // Expired slots fail up front; live hits resolve locally; the distinct
  // live misses form one encoder batch.
  std::vector<std::optional<nn::Tensor>> hit(n);
  std::vector<bool> expired(n, false);
  std::vector<int> miss_of(n, -1);
  std::vector<std::string> miss_sqls;
  std::unordered_map<std::string, int> miss_index;
  for (size_t i = 0; i < n; ++i) {
    if (requests[i].deadline <= t0) {
      metrics_.deadline_rejected.Increment();
      expired[i] = true;
      continue;
    }
    if (auto h = cache_.Get(requests[i].sql)) {
      metrics_.cache_hits.Increment();
      hit[i] = std::move(h);
      continue;
    }
    metrics_.cache_misses.Increment();
    auto [it, inserted] =
        miss_index.emplace(requests[i].sql, static_cast<int>(miss_sqls.size()));
    if (inserted) miss_sqls.push_back(requests[i].sql);
    miss_of[i] = it->second;
  }
  std::vector<StatusOr<nn::Tensor>> miss_results;
  double encode_us = 0.0;
  if (!miss_sqls.empty()) {
    const auto encode_t0 = Clock::now();
    miss_results = EncodeLocked(miss_sqls);
    encode_us = ElapsedUs(encode_t0);
    metrics_.batches.Increment();
    metrics_.batch_size.Observe(static_cast<double>(miss_sqls.size()));
    metrics_.batched_queries.Increment(miss_sqls.size());
  }
  std::vector<StatusOr<EncodeResponse>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (expired[i]) {
      out.push_back(
          Status::DeadlineExceeded("deadline expired before admission"));
      continue;
    }
    EncodeResponse response;
    if (hit[i]) {
      response.embedding = DetachedCopy(*hit[i]);
      response.cache_hit = true;
      out.push_back(std::move(response));
      continue;
    }
    const auto& r = miss_results[static_cast<size_t>(miss_of[i])];
    if (r.ok()) {
      response.embedding = DetachedCopy(r.value());
      response.encode_us = encode_us;
      out.push_back(std::move(response));
    } else {
      metrics_.errors.Increment();
      out.push_back(r.status());
    }
  }
  const double per_query_us = ElapsedUs(t0) / static_cast<double>(n);
  if (miss_sqls.empty()) {
    metrics_.hit_latency_us.Observe(per_query_us);
  } else {
    metrics_.encode_latency_us.Observe(per_query_us);
  }
  return out;
}

std::vector<StatusOr<nn::Tensor>> EncoderService::EncodeBatch(
    const std::vector<std::string>& sqls) {
  std::vector<EncodeRequest> requests(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) requests[i].sql = sqls[i];
  auto responses = EncodeBatch(requests);
  std::vector<StatusOr<nn::Tensor>> out;
  out.reserve(responses.size());
  for (auto& r : responses) {
    if (r.ok()) {
      out.push_back(std::move(r.value().embedding));
    } else {
      out.push_back(r.status());
    }
  }
  return out;
}

Status EncoderService::ReloadModel(const std::string& path) {
  if (model_ == nullptr) {
    return Status::InvalidArgument(
        "ReloadModel requires AttachModel before use");
  }
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    // One drain at a time; later reloads queue behind the current one.
    queue_cv_.wait(lock, [&] { return !draining_ || stopping_; });
    if (stopping_) return Status::Unavailable("encoder service destroyed");
    draining_ = true;
    // Everything already admitted is waited out, not dropped: the counter
    // records how much in-flight work each reload had to let finish.
    metrics_.drained_requests.Increment(ring_.size());
    queue_cv_.wait(lock, [&] {
      return (ring_.empty() && !inflight_) || stopping_;
    });
  }
  Status s;
  {
    // The ring is quiesced and admissions are parked; encode_mu_ still
    // guards against the synchronous EncodeBatch path, so no batch ever
    // sees half-new weights and no stale result can be cached after the
    // swap.
    std::lock_guard<std::mutex> lock(encode_mu_);
    s = nn::LoadModule(*model_, path);
    if (s.ok()) {
      metrics_.invalidated_embeddings.Increment(cache_.size());
      cache_.Clear();
      encoder_->InvalidateCache();
      metrics_.invalidations.Increment();
      metrics_.reloads.Increment();
    } else {
      // LoadModule is transactional: the weights are untouched, so the
      // cached embeddings are still correct — keep serving them.
      metrics_.reload_failures.Increment();
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = false;
  }
  queue_cv_.notify_all();
  return s;
}

void EncoderService::InvalidateCache() {
  // Taking encode_mu_ waits out any in-flight batch, and EncodeLocked
  // inserts before releasing it — so after Clear nothing stale can appear.
  std::lock_guard<std::mutex> lock(encode_mu_);
  metrics_.invalidated_embeddings.Increment(cache_.size());
  cache_.Clear();
  encoder_->InvalidateCache();
  metrics_.invalidations.Increment();
}

}  // namespace preqr::serving
