#include "serving/encoder_service.h"

#include <algorithm>

#include "nn/serialize.h"
#include <optional>
#include <unordered_map>
#include <utility>

namespace preqr::serving {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
             .count() /
         1000.0;
}

// Cached embeddings are shared across callers; hand out detached copies so
// a caller mutating its tensor cannot corrupt the cache (or another
// caller's view). Under the guard the copy draws from the BufferPool.
nn::Tensor DetachedCopy(const nn::Tensor& t) {
  nn::NoGradGuard no_grad;
  return t.Detach();
}

}  // namespace

EncoderService::EncoderService(baselines::QueryEncoder* encoder,
                               EncoderServiceOptions options)
    : encoder_(encoder),
      options_(options),
      cache_(options.cache_capacity, options.cache_shards) {}

StatusOr<nn::Tensor> EncoderService::Encode(const std::string& sql) {
  metrics_.requests.Increment();
  const auto t0 = Clock::now();
  if (auto hit = cache_.Get(sql)) {
    metrics_.cache_hits.Increment();
    metrics_.hit_latency_us.Observe(ElapsedUs(t0));
    return DetachedCopy(*hit);
  }
  metrics_.cache_misses.Increment();
  auto pending = std::make_shared<Pending>();
  pending->sql = sql;
  auto future = pending->promise.get_future();
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(pending);
    if (!dispatching_) {
      dispatching_ = true;
      leader = true;
    }
  }
  queue_cv_.notify_one();
  if (leader) DispatchLoop();
  auto result = future.get();
  metrics_.encode_latency_us.Observe(ElapsedUs(t0));
  return result;
}

void EncoderService::DispatchLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (options_.batch_window.count() > 0 &&
          queue_.size() <
              static_cast<size_t>(options_.max_batch_size)) {
        queue_cv_.wait_for(lock, options_.batch_window, [&] {
          return queue_.size() >=
                 static_cast<size_t>(options_.max_batch_size);
        });
      }
      if (queue_.empty()) {
        dispatching_ = false;
        return;
      }
      const size_t take = std::min(
          queue_.size(), static_cast<size_t>(options_.max_batch_size));
      batch.assign(queue_.begin(),
                   queue_.begin() + static_cast<long>(take));
      queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    }
    std::vector<std::string> sqls;
    sqls.reserve(batch.size());
    for (const auto& p : batch) sqls.push_back(p->sql);
    auto results = EncodeLocked(sqls);
    metrics_.batches.Increment();
    metrics_.batch_size.Observe(static_cast<double>(batch.size()));
    metrics_.batch_occupancy_pct.Observe(
        100.0 * static_cast<double>(batch.size()) /
        static_cast<double>(options_.max_batch_size));
    metrics_.batched_queries.Increment(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!results[i].ok()) metrics_.errors.Increment();
      batch[i]->promise.set_value(std::move(results[i]));
    }
  }
}

std::vector<StatusOr<nn::Tensor>> EncoderService::EncodeLocked(
    const std::vector<std::string>& sqls) {
  std::lock_guard<std::mutex> lock(encode_mu_);
  // Serving encodes are pure inference: no tape on this thread regardless
  // of which QueryEncoder implementation sits behind the interface.
  nn::NoGradGuard no_grad;
  auto results = encoder_->TryEncodeVectorBatch(sqls, /*train=*/false);
  // Fill the cache while still holding encode_mu_, so an InvalidateCache
  // cannot slip between the encode and the insertion and leave stale
  // embeddings behind.
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (results[i].ok()) cache_.Put(sqls[i], DetachedCopy(results[i].value()));
  }
  return results;
}

std::vector<StatusOr<nn::Tensor>> EncoderService::EncodeBatch(
    const std::vector<std::string>& sqls) {
  // Degenerate empty batch: nothing to do, and no latency observation —
  // an empty request must not skew the per-query histograms.
  if (sqls.empty()) return {};
  metrics_.requests.Increment(sqls.size());
  const auto t0 = Clock::now();
  const size_t n = sqls.size();
  // Resolve hits locally; distinct misses form one encoder batch.
  std::vector<std::optional<nn::Tensor>> hit(n);
  std::vector<int> miss_of(n, -1);
  std::vector<std::string> miss_sqls;
  std::unordered_map<std::string, int> miss_index;
  for (size_t i = 0; i < n; ++i) {
    if (auto h = cache_.Get(sqls[i])) {
      metrics_.cache_hits.Increment();
      hit[i] = std::move(h);
      continue;
    }
    metrics_.cache_misses.Increment();
    auto [it, inserted] =
        miss_index.emplace(sqls[i], static_cast<int>(miss_sqls.size()));
    if (inserted) miss_sqls.push_back(sqls[i]);
    miss_of[i] = it->second;
  }
  std::vector<StatusOr<nn::Tensor>> miss_results;
  if (!miss_sqls.empty()) {
    miss_results = EncodeLocked(miss_sqls);
    metrics_.batches.Increment();
    metrics_.batch_size.Observe(static_cast<double>(miss_sqls.size()));
    metrics_.batched_queries.Increment(miss_sqls.size());
  }
  std::vector<StatusOr<nn::Tensor>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (hit[i]) {
      out.push_back(DetachedCopy(*hit[i]));
      continue;
    }
    const auto& r = miss_results[static_cast<size_t>(miss_of[i])];
    if (r.ok()) {
      out.push_back(DetachedCopy(r.value()));
    } else {
      metrics_.errors.Increment();
      out.push_back(r.status());
    }
  }
  const double per_query_us = ElapsedUs(t0) / static_cast<double>(n == 0 ? 1 : n);
  if (miss_sqls.empty()) {
    metrics_.hit_latency_us.Observe(per_query_us);
  } else {
    metrics_.encode_latency_us.Observe(per_query_us);
  }
  return out;
}

Status EncoderService::ReloadModel(const std::string& path) {
  if (model_ == nullptr) {
    return Status::InvalidArgument(
        "ReloadModel requires AttachModel before use");
  }
  // encode_mu_ waits out any in-flight batch; holding it across the load
  // AND the cache clear means every embedding served after this returns
  // came from the new weights, and none of the old ones survive.
  std::lock_guard<std::mutex> lock(encode_mu_);
  Status s = nn::LoadModule(*model_, path);
  if (!s.ok()) {
    // LoadModule is transactional: the weights are untouched, so the
    // cached embeddings are still correct — keep serving them.
    metrics_.reload_failures.Increment();
    return s;
  }
  cache_.Clear();
  encoder_->InvalidateCache();
  metrics_.invalidations.Increment();
  metrics_.reloads.Increment();
  return Status::Ok();
}

void EncoderService::InvalidateCache() {
  // Taking encode_mu_ waits out any in-flight batch, and EncodeLocked
  // inserts before releasing it — so after Clear nothing stale can appear.
  std::lock_guard<std::mutex> lock(encode_mu_);
  cache_.Clear();
  encoder_->InvalidateCache();
  metrics_.invalidations.Increment();
}

}  // namespace preqr::serving
