#include "serving/encoder_service.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "nn/serialize.h"

namespace preqr::serving {
namespace {

using Clock = DeadlineClock;

double ElapsedUs(Clock::time_point since, Clock::time_point until) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(until - since)
             .count() /
         1000.0;
}

double ElapsedUs(Clock::time_point since) {
  return ElapsedUs(since, Clock::now());
}

// Cached embeddings are shared across callers; hand out detached copies so
// a caller mutating its tensor cannot corrupt the cache (or another
// caller's view). Under the guard the copy draws from the BufferPool.
nn::Tensor DetachedCopy(const nn::Tensor& t) {
  nn::NoGradGuard no_grad;
  return t.Detach();
}

Status UnknownTenant(const std::string& tenant_id) {
  return Status::NotFound("unknown tenant '" + tenant_id + "'");
}

}  // namespace

EncoderService::EncoderService(EncoderServiceOptions options)
    : options_(options), ring_(options.ring_capacity) {
  // Derived admission knobs work off the *rounded* ring capacity so the
  // documented fractions hold for any requested size.
  const size_t cap = ring_.capacity();
  per_client_quota_ = options.per_client_quota > 0
                          ? options.per_client_quota
                          : std::max<size_t>(1, cap / 4);
  const size_t reserve =
      options.priority_reserve > 0 ? options.priority_reserve : cap / 4;
  admit_watermark_ = reserve >= cap ? 0 : cap - reserve;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

EncoderService::EncoderService(baselines::QueryEncoder* encoder,
                               EncoderServiceOptions options)
    : EncoderService(options) {
  PREQR_CHECK(encoder != nullptr);
  // Cannot collide: the map is empty at construction.
  PREQR_CHECK(RegisterTenant(kDefaultTenantId, encoder).ok());
}

EncoderService::~EncoderService() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

Status EncoderService::RegisterTenant(const std::string& tenant_id,
                                      baselines::QueryEncoder* encoder,
                                      nn::Module* model) {
  if (encoder == nullptr) {
    return Status::InvalidArgument("RegisterTenant requires an encoder");
  }
  // The metrics block is created outside tenants_mu_ (it has its own lock);
  // create-on-demand makes a lost race here harmless.
  auto tenant_metrics = metrics_.Tenant(tenant_id);
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    if (tenants_.count(tenant_id) > 0) {
      return Status::InvalidArgument("tenant '" + tenant_id +
                                     "' already registered");
    }
    tenants_.emplace(tenant_id,
                     std::make_shared<Tenant>(tenant_id, encoder, model,
                                              options_,
                                              std::move(tenant_metrics)));
  }
  metrics_.tenant_registrations.Increment();
  return Status::Ok();
}

Status EncoderService::DeregisterTenant(const std::string& tenant_id) {
  if (tenant_id == kDefaultTenantId) {
    return Status::InvalidArgument(
        "the default tenant cannot be deregistered");
  }
  TenantPtr tenant = FindTenant(tenant_id);
  if (tenant == nullptr) return UnknownTenant(tenant_id);
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (tenant->closing) {
      return Status::InvalidArgument("tenant '" + tenant_id +
                                     "' is already deregistering");
    }
    // From here on AdmitOrResolve and the sync EncodeBatch refuse new work
    // for this tenant with kNotFound; everything already admitted drains.
    tenant->closing = true;
    lock.unlock();
    // Wake admissions parked behind a reload drain so they observe
    // `closing` and fail fast instead of waiting on a dying tenant.
    queue_cv_.notify_all();
    lock.lock();
    queue_cv_.wait(lock, [&] {
      return (tenant->queued == 0 && tenant->inflight == 0 &&
              !tenant->draining) ||
             stopping_;
    });
  }
  {
    // Belt and braces: inflight == 0 already guarantees no encoder call is
    // running, but taking the mutex makes the hand-off explicit.
    std::lock_guard<std::mutex> lock(tenant->encode_mu);
    metrics_.invalidated_embeddings.Increment(tenant->cache.size());
    tenant->cache.Clear();
  }
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_.erase(tenant_id);
  }
  metrics_.tenant_deregistrations.Increment();
  metrics_.DropTenant(tenant_id);
  queue_cv_.notify_all();
  return Status::Ok();
}

bool EncoderService::HasTenant(const std::string& tenant_id) const {
  return FindTenant(tenant_id) != nullptr;
}

std::vector<std::string> EncoderService::TenantIds() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) ids.push_back(id);
  return ids;
}

EncoderService::TenantPtr EncoderService::FindTenant(
    const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? nullptr : it->second;
}

int EncoderService::dim() const {
  TenantPtr tenant = FindTenant(kDefaultTenantId);
  return tenant == nullptr ? 0 : tenant->encoder->dim();
}

std::string EncoderService::name() const {
  TenantPtr tenant = FindTenant(kDefaultTenantId);
  return tenant == nullptr ? "serving(multi-tenant)"
                           : "serving(" + tenant->encoder->name() + ")";
}

size_t EncoderService::cached_embeddings() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  size_t total = 0;
  for (const auto& [id, tenant] : tenants_) total += tenant->cache.size();
  return total;
}

size_t EncoderService::cached_embeddings(const std::string& tenant_id) const {
  TenantPtr tenant = FindTenant(tenant_id);
  return tenant == nullptr ? 0 : tenant->cache.size();
}

size_t EncoderService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return ring_.size();
}

std::optional<StatusOr<EncodeResponse>> EncoderService::AdmitOrResolve(
    EncodeRequest&& request, std::future<StatusOr<EncodeResponse>>* future) {
  metrics_.requests.Increment();
  const auto t0 = Clock::now();
  // A dead-on-arrival deadline never touches the cache or the ring: the
  // caller has already given up, the cheapest correct answer is "no".
  if (request.deadline <= t0) {
    metrics_.deadline_rejected.Increment();
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  // Tenant routing comes before the cache probe: an unknown tenant id has
  // no cache partition to probe, and must not perturb hit/miss counters.
  TenantPtr tenant = FindTenant(request.tenant_id);
  if (tenant == nullptr) {
    metrics_.tenant_not_found.Increment();
    return UnknownTenant(request.tenant_id);
  }
  tenant->metrics->requests.Increment();
  if (auto hit = tenant->cache.Get(request.sql)) {
    metrics_.cache_hits.Increment();
    tenant->metrics->cache_hits.Increment();
    EncodeResponse response;
    response.embedding = DetachedCopy(*hit);
    response.tenant_id = tenant->id;
    response.cache_hit = true;
    metrics_.hit_latency_us.Observe(ElapsedUs(t0));
    return StatusOr<EncodeResponse>(std::move(response));
  }
  metrics_.cache_misses.Increment();
  tenant->metrics->cache_misses.Increment();
  auto pending = std::make_shared<Pending>();
  pending->sql = std::move(request.sql);
  pending->tenant = tenant;
  pending->deadline = request.deadline;
  pending->client_id = std::move(request.client_id);
  *future = pending->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    // A per-tenant reload drain parks this tenant's admissions instead of
    // dropping them: nothing is lost, the swap just gets a quiesced queue.
    // Other tenants sail past. Deadlines keep ticking; a deregistration
    // (closing) wakes the parked waiter to fail fast below.
    if (tenant->draining && !stopping_ && !tenant->closing) {
      metrics_.drain_waiters.Increment();
      auto unparked = [&] {
        return !tenant->draining || tenant->closing || stopping_;
      };
      if (pending->deadline == kNoDeadline) {
        queue_cv_.wait(lock, unparked);
      } else if (!queue_cv_.wait_until(lock, pending->deadline, unparked)) {
        metrics_.deadline_rejected.Increment();
        return Status::DeadlineExceeded("deadline expired during reload drain");
      }
    }
    if (stopping_) {
      metrics_.rejected_on_shutdown.Increment();
      return Status::Unavailable("encoder service is shutting down");
    }
    if (tenant->closing) {
      // Deregistration in progress: admitted work drains, new work is
      // refused exactly as if the tenant were already gone.
      return Status::NotFound("tenant '" + tenant->id +
                              "' is deregistering");
    }
    // Admission control, cheapest check first. Every rejection is
    // kResourceExhausted — distinguishable from malformed SQL (kParseError
    // / kInvalidArgument) and from expired deadlines (kDeadlineExceeded).
    if (ring_.full()) {
      metrics_.shed_queue_full.Increment();
      tenant->metrics->shed.Increment();
      return Status::ResourceExhausted("request ring full");
    }
    if (ring_.size() >= admit_watermark_ && request.priority <= 0) {
      metrics_.shed_low_priority.Increment();
      tenant->metrics->shed.Increment();
      return Status::ResourceExhausted(
          "request ring past high water; slot reserved for priority > 0");
    }
    auto [it, inserted] = queued_per_client_.try_emplace(pending->client_id, 0);
    if (it->second >= per_client_quota_) {
      if (inserted) queued_per_client_.erase(it);
      metrics_.shed_client_quota.Increment();
      tenant->metrics->shed.Increment();
      return Status::ResourceExhausted("client '" + pending->client_id +
                                       "' exceeded its queued-request quota");
    }
    ++it->second;
    ++tenant->queued;
    pending->enqueued_at = Clock::now();
    PREQR_CHECK(ring_.TryPush(pending));
    metrics_.queue_depth.Increment();
  }
  queue_cv_.notify_all();
  return std::nullopt;
}

StatusOr<EncodeResponse> EncoderService::Encode(const EncodeRequest& request) {
  std::future<StatusOr<EncodeResponse>> future;
  EncodeRequest copy = request;
  if (auto resolved = AdmitOrResolve(std::move(copy), &future)) {
    return *std::move(resolved);
  }
  return future.get();
}

std::future<StatusOr<EncodeResponse>> EncoderService::Submit(
    EncodeRequest request) {
  std::future<StatusOr<EncodeResponse>> future;
  if (auto resolved = AdmitOrResolve(std::move(request), &future)) {
    std::promise<StatusOr<EncodeResponse>> ready;
    ready.set_value(*std::move(resolved));
    return ready.get_future();
  }
  return future;
}

StatusOr<nn::Tensor> EncoderService::Encode(const std::string& sql) {
  EncodeRequest request;
  request.sql = sql;
  auto response = Encode(request);
  if (!response.ok()) return response.status();
  return std::move(response.value().embedding);
}

void EncoderService::DispatchLoop() {
  for (;;) {
    // One pop's worth of work, grouped by tenant in first-seen order: each
    // group becomes one single-tenant encoder batch.
    std::vector<std::pair<TenantPtr, std::vector<std::shared_ptr<Pending>>>>
        groups;
    Clock::time_point popped_at;
    size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !ring_.empty(); });
      if (stopping_) {
        // Fail whatever is still queued; nobody blocks on a dead service.
        std::shared_ptr<Pending> p;
        while (ring_.TryPop(&p)) {
          metrics_.queue_depth.Decrement();
          --p->tenant->queued;
          metrics_.rejected_on_shutdown.Increment();
          p->promise.set_value(
              Status::Unavailable("encoder service destroyed"));
        }
        return;
      }
      if (options_.batch_window.count() > 0 &&
          ring_.size() < static_cast<size_t>(options_.max_batch_size)) {
        // Wait for the batch to fill, but never past the earliest queued
        // deadline — an expired request must be dropped, not slept over.
        auto wake = Clock::now() + options_.batch_window;
        for (size_t i = 0; i < ring_.size(); ++i) {
          wake = std::min(wake, ring_.Peek(i)->deadline);
        }
        queue_cv_.wait_until(lock, wake, [&] {
          return stopping_ ||
                 ring_.size() >= static_cast<size_t>(options_.max_batch_size);
        });
        if (stopping_) continue;  // top of loop fails the queue
      }
      popped_at = Clock::now();
      std::shared_ptr<Pending> p;
      while (popped < static_cast<size_t>(options_.max_batch_size) &&
             ring_.TryPop(&p)) {
        metrics_.queue_depth.Decrement();
        --p->tenant->queued;
        auto it = queued_per_client_.find(p->client_id);
        if (it != queued_per_client_.end() && --it->second == 0) {
          queued_per_client_.erase(it);
        }
        // Deadline propagation into the micro-batcher: expired requests
        // are dropped here, before encoding, not discovered afterwards.
        if (p->deadline <= popped_at) {
          metrics_.deadline_dropped.Increment();
          p->promise.set_value(
              Status::DeadlineExceeded("deadline expired while queued"));
          continue;
        }
        ++popped;
        auto group = std::find_if(groups.begin(), groups.end(), [&](auto& g) {
          return g.first == p->tenant;
        });
        if (group == groups.end()) {
          groups.emplace_back(p->tenant,
                              std::vector<std::shared_ptr<Pending>>{});
          group = std::prev(groups.end());
        }
        group->second.push_back(std::move(p));
      }
      if (groups.empty()) {
        if (ring_.empty()) {
          lock.unlock();
          queue_cv_.notify_all();  // a drain may be waiting for empty
        }
        continue;
      }
      // Mark every popped tenant in-flight while still under the lock, so
      // a drain started now waits for these batches too.
      for (auto& [tenant, batch] : groups) ++tenant->inflight;
    }
    for (auto& [tenant, batch] : groups) {
      std::vector<std::string> sqls;
      sqls.reserve(batch.size());
      for (const auto& p : batch) sqls.push_back(p->sql);
      const auto encode_t0 = Clock::now();
      auto results = EncodeLocked(*tenant, sqls);
      const double encode_us = ElapsedUs(encode_t0);
      metrics_.batches.Increment();
      metrics_.batch_size.Observe(static_cast<double>(batch.size()));
      metrics_.batch_occupancy_pct.Observe(
          100.0 * static_cast<double>(batch.size()) /
          static_cast<double>(options_.max_batch_size));
      metrics_.batched_queries.Increment(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        const double queue_us = ElapsedUs(batch[i]->enqueued_at, popped_at);
        metrics_.queue_latency_us.Observe(queue_us);
        metrics_.encode_latency_us.Observe(ElapsedUs(batch[i]->enqueued_at));
        if (!results[i].ok()) {
          metrics_.errors.Increment();
          tenant->metrics->errors.Increment();
          batch[i]->promise.set_value(results[i].status());
          continue;
        }
        EncodeResponse response;
        response.embedding = std::move(results[i].value());
        response.tenant_id = tenant->id;
        response.cache_hit = false;
        response.queue_us = queue_us;
        response.encode_us = encode_us;
        batch[i]->promise.set_value(std::move(response));
      }
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        --tenant->inflight;
      }
      // Per-tenant drains watch inflight; wake them after every group, not
      // only at the end of the pop, so a reload of tenant A is not held
      // hostage by tenant B's longer batch.
      queue_cv_.notify_all();
    }
  }
}

std::vector<StatusOr<nn::Tensor>> EncoderService::EncodeLocked(
    Tenant& tenant, const std::vector<std::string>& sqls) {
  std::lock_guard<std::mutex> lock(tenant.encode_mu);
  // Serving encodes are pure inference: no tape on this thread regardless
  // of which QueryEncoder implementation sits behind the interface.
  nn::NoGradGuard no_grad;
  // Fallback/occupancy records from inside the encoder land in this
  // service's sink, not the process-global registry — two services (or
  // tenants of one) never interleave counters.
  ScopedEncodePathSink sink_scope(&metrics_.encode_path);
  auto results = tenant.encoder->TryEncodeVectorBatch(sqls, /*train=*/false);
  // Fill the cache while still holding encode_mu, so an InvalidateCache
  // cannot slip between the encode and the insertion and leave stale
  // embeddings behind.
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (results[i].ok()) {
      tenant.cache.Put(sqls[i], DetachedCopy(results[i].value()));
    }
  }
  return results;
}

std::vector<StatusOr<EncodeResponse>> EncoderService::EncodeBatch(
    const std::vector<EncodeRequest>& requests) {
  // Degenerate empty batch: nothing to do, and no latency observation —
  // an empty request must not skew the per-query histograms.
  if (requests.empty()) return {};
  metrics_.requests.Increment(requests.size());
  const auto t0 = Clock::now();
  const size_t n = requests.size();
  // Expired/unroutable slots fail up front; live hits resolve locally; the
  // distinct live misses form one encoder batch per tenant.
  struct TenantGroup {
    TenantPtr tenant;
    std::vector<std::string> sqls;
    std::unordered_map<std::string, int> index;
    std::vector<StatusOr<nn::Tensor>> results;
    double encode_us = 0.0;
    // Set when the group could not run at all (tenant closing/shutdown).
    std::optional<Status> refused;
  };
  std::vector<TenantGroup> groups;
  std::unordered_map<std::string, size_t> group_of_tenant;
  std::vector<std::optional<Status>> failed(n);
  std::vector<std::optional<nn::Tensor>> hit(n);
  std::vector<std::string> slot_tenant(n);
  std::vector<int> group_of(n, -1);
  std::vector<int> miss_of(n, -1);
  for (size_t i = 0; i < n; ++i) {
    if (requests[i].deadline <= t0) {
      metrics_.deadline_rejected.Increment();
      failed[i] = Status::DeadlineExceeded("deadline expired before admission");
      continue;
    }
    // Tenant routing before the cache probe, exactly as in AdmitOrResolve.
    auto [git, ginserted] =
        group_of_tenant.try_emplace(requests[i].tenant_id, groups.size());
    if (ginserted) {
      groups.push_back(TenantGroup{});
      groups.back().tenant = FindTenant(requests[i].tenant_id);
    }
    TenantGroup& group = groups[git->second];
    if (group.tenant == nullptr) {
      metrics_.tenant_not_found.Increment();
      failed[i] = UnknownTenant(requests[i].tenant_id);
      continue;
    }
    group.tenant->metrics->requests.Increment();
    slot_tenant[i] = group.tenant->id;
    if (auto h = group.tenant->cache.Get(requests[i].sql)) {
      metrics_.cache_hits.Increment();
      group.tenant->metrics->cache_hits.Increment();
      hit[i] = std::move(h);
      continue;
    }
    metrics_.cache_misses.Increment();
    group.tenant->metrics->cache_misses.Increment();
    auto [it, inserted] = group.index.emplace(
        requests[i].sql, static_cast<int>(group.sqls.size()));
    if (inserted) group.sqls.push_back(requests[i].sql);
    group_of[i] = static_cast<int>(git->second);
    miss_of[i] = it->second;
  }
  bool encoded_any = false;
  for (auto& group : groups) {
    if (group.tenant == nullptr || group.sqls.empty()) continue;
    {
      // The sync path bypasses the ring but not the drain accounting: a
      // per-tenant deregistration must be able to wait this batch out, and
      // must refuse batches that arrive after it started closing.
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) {
        group.refused =
            Status::Unavailable("encoder service is shutting down");
        continue;
      }
      if (group.tenant->closing) {
        group.refused = Status::NotFound("tenant '" + group.tenant->id +
                                         "' is deregistering");
        continue;
      }
      ++group.tenant->inflight;
    }
    const auto encode_t0 = Clock::now();
    group.results = EncodeLocked(*group.tenant, group.sqls);
    group.encode_us = ElapsedUs(encode_t0);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --group.tenant->inflight;
    }
    queue_cv_.notify_all();
    encoded_any = true;
    metrics_.batches.Increment();
    metrics_.batch_size.Observe(static_cast<double>(group.sqls.size()));
    metrics_.batched_queries.Increment(group.sqls.size());
  }
  std::vector<StatusOr<EncodeResponse>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (failed[i]) {
      out.push_back(*failed[i]);
      continue;
    }
    EncodeResponse response;
    response.tenant_id = slot_tenant[i];
    if (hit[i]) {
      response.embedding = DetachedCopy(*hit[i]);
      response.cache_hit = true;
      out.push_back(std::move(response));
      continue;
    }
    TenantGroup& group = groups[static_cast<size_t>(group_of[i])];
    if (group.refused) {
      out.push_back(*group.refused);
      continue;
    }
    const auto& r = group.results[static_cast<size_t>(miss_of[i])];
    if (r.ok()) {
      response.embedding = DetachedCopy(r.value());
      response.encode_us = group.encode_us;
      out.push_back(std::move(response));
    } else {
      metrics_.errors.Increment();
      group.tenant->metrics->errors.Increment();
      out.push_back(r.status());
    }
  }
  const double per_query_us = ElapsedUs(t0) / static_cast<double>(n);
  if (encoded_any) {
    metrics_.encode_latency_us.Observe(per_query_us);
  } else {
    metrics_.hit_latency_us.Observe(per_query_us);
  }
  return out;
}

std::vector<StatusOr<nn::Tensor>> EncoderService::EncodeBatch(
    const std::vector<std::string>& sqls) {
  std::vector<EncodeRequest> requests(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) requests[i].sql = sqls[i];
  auto responses = EncodeBatch(requests);
  std::vector<StatusOr<nn::Tensor>> out;
  out.reserve(responses.size());
  for (auto& r : responses) {
    if (r.ok()) {
      out.push_back(std::move(r.value().embedding));
    } else {
      out.push_back(r.status());
    }
  }
  return out;
}

void EncoderService::AttachModel(nn::Module* model) {
  TenantPtr tenant = FindTenant(kDefaultTenantId);
  PREQR_CHECK(tenant != nullptr);
  std::lock_guard<std::mutex> lock(tenant->encode_mu);
  tenant->model = model;
  // The attached module may not be the weights the encoder was built
  // against; dropping the encoder's memoized state (and, for int8
  // encoders, re-running weight calibration) keeps it consistent with
  // whatever is now behind it.
  tenant->encoder->InvalidateCache();
}

Status EncoderService::AttachModel(const std::string& tenant_id,
                                   nn::Module* model) {
  TenantPtr tenant = FindTenant(tenant_id);
  if (tenant == nullptr) return UnknownTenant(tenant_id);
  std::lock_guard<std::mutex> lock(tenant->encode_mu);
  tenant->model = model;
  tenant->encoder->InvalidateCache();
  return Status::Ok();
}

Status EncoderService::ReloadModel(const std::string& path) {
  return ReloadModel(kDefaultTenantId, path);
}

Status EncoderService::ReloadModel(const std::string& tenant_id,
                                   const std::string& path) {
  TenantPtr tenant = FindTenant(tenant_id);
  if (tenant == nullptr) return UnknownTenant(tenant_id);
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    // One drain per tenant at a time; later reloads queue behind the
    // current one. Other tenants' drains proceed independently.
    queue_cv_.wait(lock, [&] { return !tenant->draining || stopping_; });
    if (stopping_) return Status::Unavailable("encoder service destroyed");
    if (tenant->closing) {
      return Status::NotFound("tenant '" + tenant->id +
                              "' is deregistering");
    }
    tenant->draining = true;
    // Everything this tenant already admitted is waited out, not dropped:
    // the counter records how much in-flight work each reload had to let
    // finish. Other tenants keep flowing throughout.
    metrics_.drained_requests.Increment(tenant->queued);
    tenant->metrics->drained_requests.Increment(tenant->queued);
    queue_cv_.wait(lock, [&] {
      return (tenant->queued == 0 && tenant->inflight == 0) || stopping_;
    });
  }
  Status s;
  {
    // This tenant's queue is quiesced and its admissions are parked; the
    // encode mutex still guards against the synchronous EncodeBatch path,
    // so no batch ever sees half-new weights and no stale result can be
    // cached after the swap. The model check lives here too: taking
    // encode_mu before the drain would deadlock against a dispatcher
    // mid-encode on this tenant.
    std::lock_guard<std::mutex> lock(tenant->encode_mu);
    if (tenant->model == nullptr) {
      s = Status::InvalidArgument("ReloadModel requires AttachModel before use");
    } else {
      s = nn::LoadModule(*tenant->model, path);
      if (s.ok()) {
        metrics_.invalidated_embeddings.Increment(tenant->cache.size());
        tenant->cache.Clear();
        tenant->encoder->InvalidateCache();
        metrics_.invalidations.Increment();
        metrics_.reloads.Increment();
        tenant->metrics->reloads.Increment();
      } else {
        // LoadModule is transactional: the weights are untouched, so the
        // cached embeddings are still correct — keep serving them.
        metrics_.reload_failures.Increment();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    tenant->draining = false;
  }
  queue_cv_.notify_all();
  return s;
}

void EncoderService::InvalidateCache() {
  std::vector<TenantPtr> tenants;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants.reserve(tenants_.size());
    for (const auto& [id, tenant] : tenants_) tenants.push_back(tenant);
  }
  for (const auto& tenant : tenants) {
    // Taking encode_mu waits out any in-flight batch of this tenant, and
    // EncodeLocked inserts before releasing it — so after Clear nothing
    // stale can appear.
    std::lock_guard<std::mutex> lock(tenant->encode_mu);
    metrics_.invalidated_embeddings.Increment(tenant->cache.size());
    tenant->cache.Clear();
    tenant->encoder->InvalidateCache();
  }
  metrics_.invalidations.Increment();
}

Status EncoderService::InvalidateCache(const std::string& tenant_id) {
  TenantPtr tenant = FindTenant(tenant_id);
  if (tenant == nullptr) return UnknownTenant(tenant_id);
  std::lock_guard<std::mutex> lock(tenant->encode_mu);
  metrics_.invalidated_embeddings.Increment(tenant->cache.size());
  tenant->cache.Clear();
  tenant->encoder->InvalidateCache();
  metrics_.invalidations.Increment();
  return Status::Ok();
}

}  // namespace preqr::serving
