#include "serving/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <unordered_set>

#include "common/check.h"
#include "nn/buffer_pool.h"
#include "nn/kernels_dispatch.h"

namespace preqr::serving {

namespace {

// Process-global encode-path sink (cf. BufferPool::TotalStats): catches
// records made outside any service scope (training loops, direct encoder
// use in benches and tests). Once-per-distinct-error logging stays here —
// it is process-level hygiene regardless of which sink counts the event.
struct EncodePathRegistry {
  EncodePathSink sink;
  std::mutex log_mu;
  std::unordered_set<std::string> logged_errors;
};

EncodePathRegistry& Registry() {
  static EncodePathRegistry* r = new EncodePathRegistry();
  return *r;
}

// The thread's active sink; null means "record into the global registry".
// Thread-local (not an argument) so the tasks-layer encoder keeps its
// metrics-free signature while still reporting to the service driving it.
thread_local EncodePathSink* t_encode_sink = nullptr;

}  // namespace

double EncodePathStats::Occupancy() const {
  return padded_slots == 0 ? 1.0
                           : static_cast<double>(valid_tokens) /
                                 static_cast<double>(padded_slots);
}

void EncodePathSink::RecordPaddedBatch(int batch_size, int t_max,
                                       uint64_t valid_tokens) {
  const uint64_t slots =
      static_cast<uint64_t>(batch_size) * static_cast<uint64_t>(t_max);
  padded_batches_.Increment();
  padded_slots_.Increment(slots);
  valid_tokens_.Increment(valid_tokens);
  if (slots > 0) {
    padded_waste_pct_.Observe(100.0 *
                              static_cast<double>(slots - valid_tokens) /
                              static_cast<double>(slots));
  }
}

EncodePathStats EncodePathSink::Stats() const {
  EncodePathStats s;
  s.fallback_total = fallbacks_.value();
  s.padded_batches = padded_batches_.value();
  s.padded_slots = padded_slots_.value();
  s.valid_tokens = valid_tokens_.value();
  s.int8_encodes = int8_encodes_.value();
  return s;
}

ScopedEncodePathSink::ScopedEncodePathSink(EncodePathSink* sink)
    : previous_(t_encode_sink) {
  t_encode_sink = sink;
}

ScopedEncodePathSink::~ScopedEncodePathSink() { t_encode_sink = previous_; }

void RecordEncodeFallback(const std::string& error) {
  auto& r = Registry();
  EncodePathSink* sink = t_encode_sink != nullptr ? t_encode_sink : &r.sink;
  sink->RecordFallback();
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(r.log_mu);
    first = r.logged_errors.insert(error).second;
  }
  if (first) {
    std::fprintf(stderr, "[encode] zero-vector fallback: %s\n", error.c_str());
  }
}

void RecordPaddedBatch(int batch_size, int t_max, uint64_t valid_tokens) {
  EncodePathSink* sink =
      t_encode_sink != nullptr ? t_encode_sink : &Registry().sink;
  sink->RecordPaddedBatch(batch_size, t_max, valid_tokens);
}

void RecordInt8Encode() {
  EncodePathSink* sink =
      t_encode_sink != nullptr ? t_encode_sink : &Registry().sink;
  sink->RecordInt8Encode();
}

EncodePathStats GlobalEncodePathStats() { return Registry().sink.Stats(); }

const Histogram& GlobalPaddedWasteHistogram() {
  return Registry().sink.padded_waste_pct();
}

std::shared_ptr<TenantMetrics> ServingMetrics::Tenant(
    const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& slot = tenants_[tenant_id];
  if (slot == nullptr) slot = std::make_shared<TenantMetrics>();
  return slot;
}

void ServingMetrics::DropTenant(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  tenants_.erase(tenant_id);
}

Histogram::Histogram(double scale, double growth, int num_buckets) {
  PREQR_CHECK_GT(scale, 0.0);
  PREQR_CHECK_GT(growth, 1.0);
  PREQR_CHECK_GT(num_buckets, 1);
  bounds_.reserve(static_cast<size_t>(num_buckets));
  double bound = scale;
  for (int b = 0; b + 1 < num_buckets; ++b) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  bounds_.push_back(std::numeric_limits<double>::infinity());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size());
  for (size_t b = 0; b < bounds_.size(); ++b) counts_[b] = 0;
}

void Histogram::Observe(double value) {
  size_t b = 0;
  while (value >= bounds_[b]) ++b;  // last bound is +inf: always terminates
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; spell the CAS loop out for
  // toolchains that lower it poorly.
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;  // defined: an empty histogram reports 0
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(n);
  double lower = 0.0;
  uint64_t seen = 0;
  for (size_t b = 0; b < bounds_.size(); ++b) {
    const uint64_t in_bucket = counts_[b].load(std::memory_order_relaxed);
    // Only a non-empty bucket can hold the target rank. The old code
    // stopped at the first bucket whose cumulative count crossed target —
    // including empty leading buckets when target rounds to 0 — and
    // reported that bucket's upper bound, so a histogram whose samples
    // all sat in bucket 3 answered p50 with bucket 0's edge.
    if (in_bucket > 0 &&
        static_cast<double>(seen) + static_cast<double>(in_bucket) >= target) {
      if (std::isinf(bounds_[b])) {
        // The unbounded last bucket has no width to interpolate in; the
        // previous finite bound is the largest value the samples are known
        // to exceed (the old code invented `2 * lower + 1` here).
        return lower;
      }
      const double upper = bounds_[b];
      // A rank exactly on the boundary (target == seen + in_bucket) gives
      // frac == 1 and returns exactly `upper`.
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    seen += in_bucket;
    lower = bounds_[b];
  }
  // Only reachable when a racing Observe bumped count_ after our bucket
  // scan started; the largest finite bound is the only defined answer
  // (`lower` here would be +inf).
  return bounds_.size() >= 2 ? bounds_[bounds_.size() - 2] : 0.0;
}

double ServingMetrics::CacheHitRate() const {
  const uint64_t hits = cache_hits.value();
  const uint64_t total = hits + cache_misses.value();
  return total == 0 ? 0.0 : static_cast<double>(hits) /
                                static_cast<double>(total);
}

std::string ServingMetrics::DumpText() const {
  char line[160];
  std::string out;
  auto emit_counter = [&](const char* name, const Counter& c) {
    std::snprintf(line, sizeof(line), "%s %llu\n", name,
                  static_cast<unsigned long long>(c.value()));
    out += line;
  };
  auto emit_value = [&](const char* name, double v) {
    std::snprintf(line, sizeof(line), "%s %.6g\n", name, v);
    out += line;
  };
  emit_counter("serving_requests_total", requests);
  emit_counter("serving_cache_hits_total", cache_hits);
  emit_counter("serving_cache_misses_total", cache_misses);
  emit_value("serving_cache_hit_rate", CacheHitRate());
  emit_counter("serving_errors_total", errors);
  emit_counter("serving_batches_total", batches);
  emit_counter("serving_batched_queries_total", batched_queries);
  emit_counter("serving_invalidations_total", invalidations);
  emit_counter("serving_model_reloads_total", reloads);
  emit_counter("serving_model_reload_failures_total", reload_failures);
  // Admission control: everything the service refused, by reason, plus the
  // instantaneous ring depth.
  emit_counter("serving_shed_queue_full_total", shed_queue_full);
  emit_counter("serving_shed_client_quota_total", shed_client_quota);
  emit_counter("serving_shed_low_priority_total", shed_low_priority);
  std::snprintf(line, sizeof(line), "serving_shed_total %llu\n",
                static_cast<unsigned long long>(ShedTotal()));
  out += line;
  emit_counter("serving_deadline_rejected_total", deadline_rejected);
  emit_counter("serving_deadline_dropped_total", deadline_dropped);
  std::snprintf(line, sizeof(line), "serving_queue_depth %lld\n",
                static_cast<long long>(queue_depth.value()));
  out += line;
  // Drain accounting: what a reload waited out and what invalidation threw
  // away — the previously-invisible cost of InvalidateCache/ReloadModel.
  emit_counter("serving_drain_waiters_total", drain_waiters);
  emit_counter("serving_drained_requests_total", drained_requests);
  emit_counter("serving_invalidated_embeddings_total", invalidated_embeddings);
  emit_counter("serving_rejected_on_shutdown_total", rejected_on_shutdown);
  // Tenancy: registry lifecycle plus unknown-id rejections (which happen
  // before the cache probe, so they appear in no hit/miss counter).
  emit_counter("serving_tenant_not_found_total", tenant_not_found);
  emit_counter("serving_tenant_registrations_total", tenant_registrations);
  emit_counter("serving_tenant_deregistrations_total", tenant_deregistrations);
  {
    // Per-tenant dimension: the same events as the aggregate counters,
    // labeled. The default tenant ("") renders as tenant="default".
    std::lock_guard<std::mutex> lock(tenants_mu_);
    auto emit_tenant = [&](const char* name, const std::string& id,
                           const Counter& c) {
      std::snprintf(line, sizeof(line), "%s{tenant=\"%s\"} %llu\n", name,
                    id.empty() ? "default" : id.c_str(),
                    static_cast<unsigned long long>(c.value()));
      out += line;
    };
    for (const auto& [id, tm] : tenants_) {
      emit_tenant("serving_tenant_requests_total", id, tm->requests);
      emit_tenant("serving_tenant_cache_hits_total", id, tm->cache_hits);
      emit_tenant("serving_tenant_cache_misses_total", id, tm->cache_misses);
      emit_tenant("serving_tenant_errors_total", id, tm->errors);
      emit_tenant("serving_tenant_shed_total", id, tm->shed);
      emit_tenant("serving_tenant_reloads_total", id, tm->reloads);
      emit_tenant("serving_tenant_drained_requests_total", id,
                  tm->drained_requests);
    }
  }
  emit_value("serving_batch_size_mean", batch_size.mean());
  emit_value("serving_batch_size_p99", batch_size.Percentile(0.99));
  emit_value("serving_encode_latency_us_p50",
             encode_latency_us.Percentile(0.5));
  emit_value("serving_encode_latency_us_p99",
             encode_latency_us.Percentile(0.99));
  emit_value("serving_hit_latency_us_p50", hit_latency_us.Percentile(0.5));
  emit_value("serving_hit_latency_us_p99", hit_latency_us.Percentile(0.99));
  emit_value("serving_queue_latency_us_p50", queue_latency_us.Percentile(0.5));
  emit_value("serving_queue_latency_us_p99",
             queue_latency_us.Percentile(0.99));
  emit_value("serving_batch_occupancy_pct_mean", batch_occupancy_pct.mean());
  emit_value("serving_batch_occupancy_pct_p99",
             batch_occupancy_pct.Percentile(0.99));
  // Network front-end (zeros when no EncodeServer is attached).
  emit_counter("serving_net_connections_total", net_connections);
  emit_counter("serving_net_connections_rejected_total",
               net_connections_rejected);
  emit_counter("serving_net_requests_total", net_requests);
  emit_counter("serving_net_bad_frames_total", net_bad_frames);
  // Tensor-storage recycling behind the no-grad encode path (process-wide).
  const nn::BufferPoolStats pool = nn::BufferPool::TotalStats();
  auto emit_u64 = [&](const char* name, uint64_t v) {
    std::snprintf(line, sizeof(line), "%s %llu\n", name,
                  static_cast<unsigned long long>(v));
    out += line;
  };
  emit_u64("nn_buffer_pool_allocs_total", pool.allocs);
  emit_u64("nn_buffer_pool_reuses_total", pool.reuses);
  emit_u64("nn_buffer_pool_releases_total", pool.releases);
  emit_u64("nn_buffer_pool_discards_total", pool.discards);
  emit_u64("nn_buffer_pool_live_bytes", pool.live_bytes);
  // This service's own encode path: fallbacks + padded-batch shape from the
  // per-service sink — two live services no longer interleave these.
  const EncodePathStats enc = encode_path.Stats();
  emit_u64("encode_fallback_total", enc.fallback_total);
  emit_u64("encode_padded_batches_total", enc.padded_batches);
  emit_u64("encode_padded_slots_total", enc.padded_slots);
  emit_u64("encode_valid_tokens_total", enc.valid_tokens);
  emit_value("encode_batch_occupancy", enc.Occupancy());
  const Histogram& waste = encode_path.padded_waste_pct();
  emit_value("encode_padded_waste_pct_mean", waste.mean());
  emit_value("encode_padded_waste_pct_p99", waste.Percentile(0.99));
  // Which kernel backend the process is running (info-style metric: the
  // value is always 1, the label carries the answer) and how many of this
  // service's encoder calls took the int8 quantized GEMM path.
  std::snprintf(line, sizeof(line), "serving_kernel_impl_info{impl=\"%s\"} 1\n",
                nn::kernels::ActiveImplName());
  out += line;
  emit_u64("encode_int8_encodes_total", enc.int8_encodes);
  return out;
}

}  // namespace preqr::serving
