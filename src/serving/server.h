#ifndef PREQR_SERVING_SERVER_H_
#define PREQR_SERVING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serving/encoder_service.h"

namespace preqr::serving {

struct ServerOptions {
  // 0 binds an ephemeral port; read the real one back via port().
  uint16_t port = 0;
  // Live connections beyond this are closed at accept (counted in
  // serving_net_connections_rejected_total) — connection-level admission
  // control in front of the request ring's per-request control.
  int max_connections = 64;
  int listen_backlog = 128;
};

// Loopback TCP front-end over an EncoderService speaking the
// length-prefixed binary protocol in serving/wire.h: encode /
// encode-batch / metrics / reload. One thread per connection (bounded by
// max_connections); all request-level policy — micro-batching, deadlines,
// per-client admission control, load shedding — lives in the service, so
// every transport (or none) shares one behavior.
//
// Error contract on the wire: every reply carries the canonical StatusCode
// byte, so remote callers distinguish malformed SQL (kParseError /
// kInvalidArgument) from shed load (kResourceExhausted) from expired
// deadlines (kDeadlineExceeded) exactly like in-process callers do.
class EncodeServer {
 public:
  explicit EncodeServer(EncoderService* service, ServerOptions options = {});
  ~EncodeServer();  // calls Stop()

  EncodeServer(const EncodeServer&) = delete;
  EncodeServer& operator=(const EncodeServer&) = delete;

  // Binds 127.0.0.1:<port>, starts the accept loop. Fails with
  // kUnavailable if the socket cannot be bound.
  Status Start();
  // Stops accepting, shuts every live connection down, joins all threads.
  // Idempotent; in-flight requests get their reply iff the write wins the
  // race with the socket shutdown.
  void Stop();

  bool running() const { return running_.load(); }
  // The bound port (after Start); 0 before.
  int port() const { return port_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Parses one request payload and renders the reply payload.
  std::string HandleFrame(const std::string& payload);
  // Joins finished connection threads (called from the accept loop).
  void ReapConnections();

  EncoderService* service_;
  ServerOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_SERVER_H_
