#include "serving/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serving/wire.h"

namespace preqr::serving {
namespace {

bool ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

void AppendRequestHeader(std::string* out, const WireRequestOptions& options) {
  wire::PutString(out, options.tenant_id);
  wire::PutString(out, options.client_id);
  wire::PutU32(out, static_cast<uint32_t>(options.priority));
  wire::PutI64(out, options.timeout_us);
}

// Reads one reply slot (u8 code, then ok body or message) — the shape
// shared by kEncode replies and kEncodeBatch slots.
StatusOr<WireEncodeResult> ParseResultSlot(wire::Reader* r) {
  uint8_t code = 0;
  if (!r->GetU8(&code)) {
    return Status::Unavailable("torn reply from server");
  }
  if (code != 0) {
    std::string message;
    if (!r->GetString(&message)) {
      return Status::Unavailable("torn error reply from server");
    }
    return Status(StatusCodeFromByte(code), std::move(message));
  }
  WireEncodeResult result;
  uint8_t flags = 0;
  uint32_t dim = 0;
  if (!r->GetU8(&flags) || !r->GetF64(&result.queue_us) ||
      !r->GetF64(&result.encode_us) || !r->GetU32(&dim) ||
      r->remaining() < static_cast<size_t>(dim) * 4) {
    return Status::Unavailable("torn encode reply from server");
  }
  result.cache_hit = (flags & wire::kFlagCacheHit) != 0;
  result.embedding.resize(dim);
  for (uint32_t i = 0; i < dim; ++i) r->GetF32(&result.embedding[i]);
  return result;
}

}  // namespace

Status EncodeClient::Connect(int port, const std::string& host) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    Close();
    return Status::Unavailable("connect: " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void EncodeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::string> EncodeClient::RoundTrip(const std::string& payload) {
  if (fd_ < 0) return Status::Unavailable("client not connected");
  std::string frame;
  frame.reserve(4 + payload.size());
  wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    Close();
    return Status::Unavailable("connection lost while sending request");
  }
  char header[4];
  if (!ReadFull(fd_, header, sizeof(header))) {
    Close();
    return Status::Unavailable("connection closed by server");
  }
  wire::Reader hr(header, sizeof(header));
  uint32_t reply_len = 0;
  hr.GetU32(&reply_len);
  if (reply_len == 0 || reply_len > wire::kMaxFrameBytes) {
    Close();
    return Status::Unavailable("bad reply frame length");
  }
  std::string reply(reply_len, '\0');
  if (!ReadFull(fd_, reply.data(), reply_len)) {
    Close();
    return Status::Unavailable("connection lost mid-reply");
  }
  return reply;
}

StatusOr<WireEncodeResult> EncodeClient::Encode(
    const std::string& sql, const WireRequestOptions& options) {
  std::string payload;
  wire::PutU8(&payload, wire::kProtocolVersion);
  wire::PutU8(&payload, wire::kEncode);
  AppendRequestHeader(&payload, options);
  wire::PutString(&payload, sql);
  auto reply = RoundTrip(payload);
  if (!reply.ok()) return reply.status();
  wire::Reader r(reply.value());
  return ParseResultSlot(&r);
}

std::vector<StatusOr<WireEncodeResult>> EncodeClient::EncodeBatch(
    const std::vector<std::string>& sqls, const WireRequestOptions& options) {
  std::string payload;
  wire::PutU8(&payload, wire::kProtocolVersion);
  wire::PutU8(&payload, wire::kEncodeBatch);
  AppendRequestHeader(&payload, options);
  wire::PutU32(&payload, static_cast<uint32_t>(sqls.size()));
  for (const auto& sql : sqls) wire::PutString(&payload, sql);
  auto reply = RoundTrip(payload);
  std::vector<StatusOr<WireEncodeResult>> out;
  if (!reply.ok()) {
    out.assign(sqls.size(), reply.status());
    return out;
  }
  wire::Reader r(reply.value());
  uint8_t code = 0;
  uint32_t count = 0;
  if (!r.GetU8(&code)) {
    out.assign(sqls.size(), Status::Unavailable("torn batch reply"));
    return out;
  }
  if (code != 0) {
    // Frame-level failure (e.g. hostile batch rejected): every slot fails
    // with the server's status.
    std::string message;
    r.GetString(&message);
    out.assign(sqls.size(),
               Status(StatusCodeFromByte(code), std::move(message)));
    return out;
  }
  if (!r.GetU32(&count) || count != sqls.size()) {
    out.assign(sqls.size(),
               Status::Unavailable("batch reply slot count mismatch"));
    return out;
  }
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.push_back(ParseResultSlot(&r));
  return out;
}

StatusOr<std::string> EncodeClient::Metrics() {
  std::string payload;
  wire::PutU8(&payload, wire::kProtocolVersion);
  wire::PutU8(&payload, wire::kMetrics);
  auto reply = RoundTrip(payload);
  if (!reply.ok()) return reply.status();
  wire::Reader r(reply.value());
  uint8_t code = 0;
  if (!r.GetU8(&code)) return Status::Unavailable("torn metrics reply");
  std::string text;
  if (!r.GetString(&text)) return Status::Unavailable("torn metrics reply");
  if (code != 0) return Status(StatusCodeFromByte(code), std::move(text));
  return text;
}

Status EncodeClient::ReloadModel(const std::string& tenant_id,
                                 const std::string& path) {
  std::string payload;
  wire::PutU8(&payload, wire::kProtocolVersion);
  wire::PutU8(&payload, wire::kReload);
  wire::PutString(&payload, tenant_id);
  wire::PutString(&payload, path);
  auto reply = RoundTrip(payload);
  if (!reply.ok()) return reply.status();
  wire::Reader r(reply.value());
  uint8_t code = 0;
  if (!r.GetU8(&code)) return Status::Unavailable("torn reload reply");
  if (code == 0) return Status::Ok();
  std::string message;
  r.GetString(&message);
  return Status(StatusCodeFromByte(code), std::move(message));
}

}  // namespace preqr::serving
