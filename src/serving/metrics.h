#ifndef PREQR_SERVING_METRICS_H_
#define PREQR_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace preqr::serving {

// Monotonic event counter. Relaxed atomics on purpose: metrics observe the
// request path, they never synchronize it.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, live connections): goes up and down,
// unlike a Counter. Same relaxed-ordering contract.
class Gauge {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Lock-free histogram over exponential buckets: bucket b covers
// [scale * growth^(b-1), scale * growth^b), bucket 0 covers [0, scale),
// the last bucket is unbounded. Percentiles interpolate linearly inside
// the bucket that crosses the target rank — an estimate whose error is
// bounded by the bucket width, which is what latency dashboards need.
class Histogram {
 public:
  Histogram(double scale, double growth, int num_buckets);

  void Observe(double value);
  uint64_t count() const;
  double sum() const;
  double mean() const;
  double Percentile(double p) const;  // p in [0, 1]

 private:
  std::vector<double> bounds_;  // upper bound per bucket, last = +inf
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Everything the embedding-serving layer exports. DumpText renders a
// Prometheus-style text snapshot; the bench harness prints it after a run.
struct ServingMetrics {
  Counter requests;         // Encode + EncodeBatch slots
  Counter cache_hits;       // served from the embedding LRU
  Counter cache_misses;     // had to reach the encoder
  Counter errors;           // malformed SQL (error Status returned)
  Counter batches;          // micro-batches dispatched to the encoder
  Counter batched_queries;  // queries carried by those batches
  Counter invalidations;    // InvalidateCache calls (ReloadModel included)
  Counter reloads;          // successful hot model reloads
  Counter reload_failures;  // rejected reloads (weights kept, cache intact)

  // --- Admission control / deadlines (request ring front of the service) --
  Counter shed_queue_full;     // kResourceExhausted: ring at capacity
  Counter shed_client_quota;   // kResourceExhausted: client over its share
  Counter shed_low_priority;   // kResourceExhausted: ring past high water,
                               // priority <= 0
  Counter deadline_rejected;   // kDeadlineExceeded on arrival (never queued)
  Counter deadline_dropped;    // kDeadlineExceeded while queued — dropped by
                               // the dispatcher before encoding
  uint64_t ShedTotal() const {
    return shed_queue_full.value() + shed_client_quota.value() +
           shed_low_priority.value();
  }

  // --- Drain / invalidation (dropped or waited-out in-flight work) --------
  Counter drain_waiters;           // admissions parked while a reload drained
  Counter drained_requests;        // queued requests a drain waited out
  Counter invalidated_embeddings;  // cached embeddings dropped by
                                   // InvalidateCache/ReloadModel
  Counter rejected_on_shutdown;    // kUnavailable: queued at destruction

  Gauge queue_depth;  // requests in the ring right now

  Histogram batch_size{1.0, 2.0, 12};
  Histogram encode_latency_us{1.0, 4.0, 16};  // cold path, per request
  Histogram hit_latency_us{1.0, 4.0, 16};     // cache-hit path, per request
  Histogram queue_latency_us{1.0, 4.0, 16};   // admission -> dispatch pop
  // Percent of max_batch_size capacity each dispatched micro-batch used —
  // low means the batch window closes before the queue fills.
  Histogram batch_occupancy_pct{1.0, 2.0, 9};

  // --- Network front-end (EncodeServer) -----------------------------------
  Counter net_connections;           // accepted connections
  Counter net_connections_rejected;  // closed at accept: over the cap
  Counter net_requests;              // frames dispatched to a handler
  Counter net_bad_frames;            // unparseable/oversized frames

  double CacheHitRate() const;
  std::string DumpText() const;
};

// --- Process-global encode-path instrumentation ---------------------------
// The padded [B, T, d] forwards and the zero-vector fallback live below the
// serving layer (tasks::PreqrEncoder has no ServingMetrics instance), so
// their stats are process-global like the BufferPool's: recorded wherever a
// batch is collated or a fallback served, rendered by every DumpText.
struct EncodePathStats {
  uint64_t fallback_total = 0;   // zero-vector fallbacks for malformed SQL
  uint64_t padded_batches = 0;   // padded [B, T, d] forwards executed
  uint64_t padded_slots = 0;     // B * T_max summed over those forwards
  uint64_t valid_tokens = 0;     // sum of example lengths over those forwards
  // valid_tokens / padded_slots — the fraction of batched compute that
  // touched real rows (1.0 when no padded batch ran yet).
  double Occupancy() const;
};

// Counts one zero-vector fallback. Each distinct error message is logged to
// stderr once per process, so a single bad query template cannot flood logs
// while new failure modes still surface.
void RecordEncodeFallback(const std::string& error);
// Records one padded [B, T_max] batch carrying `valid_tokens` = sum_i T_i
// real rows; feeds the global padded-waste histogram.
void RecordPaddedBatch(int batch_size, int t_max, uint64_t valid_tokens);
EncodePathStats GlobalEncodePathStats();
// Padded-waste percent (100 * pad slots / total slots) per recorded batch.
const Histogram& GlobalPaddedWasteHistogram();

}  // namespace preqr::serving

#endif  // PREQR_SERVING_METRICS_H_
