#ifndef PREQR_SERVING_METRICS_H_
#define PREQR_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace preqr::serving {

// Monotonic event counter. Relaxed atomics on purpose: metrics observe the
// request path, they never synchronize it.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, live connections): goes up and down,
// unlike a Counter. Same relaxed-ordering contract.
class Gauge {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Lock-free histogram over exponential buckets: bucket b covers
// [scale * growth^(b-1), scale * growth^b), bucket 0 covers [0, scale),
// the last bucket is unbounded. Percentiles interpolate linearly inside
// the bucket that crosses the target rank — an estimate whose error is
// bounded by the bucket width, which is what latency dashboards need.
class Histogram {
 public:
  Histogram(double scale, double growth, int num_buckets);

  void Observe(double value);
  uint64_t count() const;
  double sum() const;
  double mean() const;
  double Percentile(double p) const;  // p in [0, 1]

 private:
  std::vector<double> bounds_;  // upper bound per bucket, last = +inf
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Snapshot of the encode-path shape counters (padded [B, T, d] forwards and
// zero-vector fallbacks) from one sink or from the process-global registry.
struct EncodePathStats {
  uint64_t fallback_total = 0;   // zero-vector fallbacks for malformed SQL
  uint64_t padded_batches = 0;   // padded [B, T, d] forwards executed
  uint64_t padded_slots = 0;     // B * T_max summed over those forwards
  uint64_t valid_tokens = 0;     // sum of example lengths over those forwards
  uint64_t int8_encodes = 0;     // encoder calls run with the int8 GEMM path
  // valid_tokens / padded_slots — the fraction of batched compute that
  // touched real rows (1.0 when no padded batch ran yet).
  double Occupancy() const;
};

// One scope's worth of encode-path counters. Every EncoderService owns one
// (inside its ServingMetrics) so two live services never interleave their
// fallback/occupancy numbers; encoders running outside any service record
// into the process-global registry instead (see ScopedEncodePathSink).
class EncodePathSink {
 public:
  void RecordFallback() { fallbacks_.Increment(); }
  void RecordPaddedBatch(int batch_size, int t_max, uint64_t valid_tokens);
  void RecordInt8Encode() { int8_encodes_.Increment(); }
  EncodePathStats Stats() const;
  const Histogram& padded_waste_pct() const { return padded_waste_pct_; }

 private:
  Counter fallbacks_;
  Counter padded_batches_;
  Counter padded_slots_;
  Counter valid_tokens_;
  Counter int8_encodes_;
  // Padded-waste percent (100 * pad slots / total slots) per batch.
  Histogram padded_waste_pct_{1.0, 2.0, 9};
};

// RAII redirection of RecordEncodeFallback/RecordPaddedBatch on this thread:
// while alive, records land in `sink` instead of the process-global
// registry. EncoderService installs one around every encoder call, so the
// tasks-layer encoder needs no ServingMetrics plumbing and still reports to
// the service that invoked it. Nests: the previous sink is restored.
class ScopedEncodePathSink {
 public:
  explicit ScopedEncodePathSink(EncodePathSink* sink);
  ~ScopedEncodePathSink();
  ScopedEncodePathSink(const ScopedEncodePathSink&) = delete;
  ScopedEncodePathSink& operator=(const ScopedEncodePathSink&) = delete;

 private:
  EncodePathSink* previous_;
};

// Per-tenant slice of the serving counters. The aggregate ServingMetrics
// counters keep counting every tenant's traffic; these break the same
// events down by tenant for DumpText's labeled lines and the isolation
// tests. Blocks are created on demand and kept alive by shared_ptr so a
// request that raced a deregistration can still bump its counters safely.
struct TenantMetrics {
  Counter requests;          // Encode + EncodeBatch slots for this tenant
  Counter cache_hits;        // served from this tenant's cache partition
  Counter cache_misses;      // had to reach this tenant's encoder
  Counter errors;            // malformed SQL under this tenant
  Counter shed;              // admission-control rejections
  Counter reloads;           // successful per-tenant model reloads
  Counter drained_requests;  // queued work a reload/deregister waited out
};

// Everything the embedding-serving layer exports. DumpText renders a
// Prometheus-style text snapshot; the bench harness prints it after a run.
struct ServingMetrics {
  Counter requests;         // Encode + EncodeBatch slots
  Counter cache_hits;       // served from the embedding LRU
  Counter cache_misses;     // had to reach the encoder
  Counter errors;           // malformed SQL (error Status returned)
  Counter batches;          // micro-batches dispatched to the encoder
  Counter batched_queries;  // queries carried by those batches
  Counter invalidations;    // InvalidateCache calls (ReloadModel included)
  Counter reloads;          // successful hot model reloads
  Counter reload_failures;  // rejected reloads (weights kept, cache intact)

  // --- Admission control / deadlines (request ring front of the service) --
  Counter shed_queue_full;     // kResourceExhausted: ring at capacity
  Counter shed_client_quota;   // kResourceExhausted: client over its share
  Counter shed_low_priority;   // kResourceExhausted: ring past high water,
                               // priority <= 0
  Counter deadline_rejected;   // kDeadlineExceeded on arrival (never queued)
  Counter deadline_dropped;    // kDeadlineExceeded while queued — dropped by
                               // the dispatcher before encoding
  uint64_t ShedTotal() const {
    return shed_queue_full.value() + shed_client_quota.value() +
           shed_low_priority.value();
  }

  // --- Drain / invalidation (dropped or waited-out in-flight work) --------
  Counter drain_waiters;           // admissions parked while a reload drained
  Counter drained_requests;        // queued requests a drain waited out
  Counter invalidated_embeddings;  // cached embeddings dropped by
                                   // InvalidateCache/ReloadModel/deregister
  Counter rejected_on_shutdown;    // kUnavailable: queued at destruction

  // --- Tenancy (registry lifecycle + routing) ------------------------------
  Counter tenant_not_found;        // kNotFound: unknown tenant id, rejected
                                   // before the cache probe
  Counter tenant_registrations;    // RegisterTenant calls that succeeded
  Counter tenant_deregistrations;  // DeregisterTenant drains that completed

  Gauge queue_depth;  // requests in the ring right now

  Histogram batch_size{1.0, 2.0, 12};
  Histogram encode_latency_us{1.0, 4.0, 16};  // cold path, per request
  Histogram hit_latency_us{1.0, 4.0, 16};     // cache-hit path, per request
  Histogram queue_latency_us{1.0, 4.0, 16};   // admission -> dispatch pop
  // Percent of max_batch_size capacity each dispatched micro-batch used —
  // low means the batch window closes before the queue fills.
  Histogram batch_occupancy_pct{1.0, 2.0, 9};

  // --- Network front-end (EncodeServer) -----------------------------------
  Counter net_connections;           // accepted connections
  Counter net_connections_rejected;  // closed at accept: over the cap
  Counter net_requests;              // frames dispatched to a handler
  Counter net_bad_frames;            // unparseable/oversized frames or a
                                     // protocol-version mismatch

  // This service's own encode-path shape (fallbacks + padded batches):
  // installed as the thread's sink around every encoder call the service
  // makes, so two services never interleave these numbers.
  EncodePathSink encode_path;

  // Per-tenant counter block, created on demand. The returned block stays
  // valid for the caller even after DropTenant (shared ownership).
  std::shared_ptr<TenantMetrics> Tenant(const std::string& tenant_id);
  // Stops rendering the tenant's lines; outstanding holders of the block
  // keep a harmless orphan.
  void DropTenant(const std::string& tenant_id);

  double CacheHitRate() const;
  std::string DumpText() const;

 private:
  mutable std::mutex tenants_mu_;
  // Ordered so DumpText emits tenants in a stable order.
  std::map<std::string, std::shared_ptr<TenantMetrics>> tenants_;
};

// --- Process-global encode-path instrumentation ---------------------------
// The padded [B, T, d] forwards and the zero-vector fallback live below the
// serving layer (tasks::PreqrEncoder has no ServingMetrics instance), so
// records go through free functions: to the thread's ScopedEncodePathSink
// when one is installed (the serving path), otherwise to a process-global
// registry (direct encoder use in training loops, benches, tests).
//
// Counts one zero-vector fallback. Each distinct error message is logged to
// stderr once per process, so a single bad query template cannot flood logs
// while new failure modes still surface.
void RecordEncodeFallback(const std::string& error);
// Records one padded [B, T_max] batch carrying `valid_tokens` = sum_i T_i
// real rows; feeds the padded-waste histogram of the active sink.
void RecordPaddedBatch(int batch_size, int t_max, uint64_t valid_tokens);
// Counts one encoder call that opted into the int8 quantized GEMM path
// (tasks::PreqrEncoder with Options::use_int8, inference encodes only).
void RecordInt8Encode();
// The process-global registry's view (unscoped records only).
EncodePathStats GlobalEncodePathStats();
// Padded-waste percent (100 * pad slots / total slots) per recorded batch.
const Histogram& GlobalPaddedWasteHistogram();

}  // namespace preqr::serving

#endif  // PREQR_SERVING_METRICS_H_
