#ifndef PREQR_SERVING_METRICS_H_
#define PREQR_SERVING_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace preqr::serving {

// Monotonic event counter. Relaxed atomics on purpose: metrics observe the
// request path, they never synchronize it.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Lock-free histogram over exponential buckets: bucket b covers
// [scale * growth^(b-1), scale * growth^b), bucket 0 covers [0, scale),
// the last bucket is unbounded. Percentiles interpolate linearly inside
// the bucket that crosses the target rank — an estimate whose error is
// bounded by the bucket width, which is what latency dashboards need.
class Histogram {
 public:
  Histogram(double scale, double growth, int num_buckets);

  void Observe(double value);
  uint64_t count() const;
  double sum() const;
  double mean() const;
  double Percentile(double p) const;  // p in [0, 1]

 private:
  std::vector<double> bounds_;  // upper bound per bucket, last = +inf
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Everything the embedding-serving layer exports. DumpText renders a
// Prometheus-style text snapshot; the bench harness prints it after a run.
struct ServingMetrics {
  Counter requests;         // Encode + EncodeBatch slots
  Counter cache_hits;       // served from the embedding LRU
  Counter cache_misses;     // had to reach the encoder
  Counter errors;           // malformed SQL (error Status returned)
  Counter batches;          // micro-batches dispatched to the encoder
  Counter batched_queries;  // queries carried by those batches
  Counter invalidations;    // InvalidateCache calls (ReloadModel included)
  Counter reloads;          // successful hot model reloads
  Counter reload_failures;  // rejected reloads (weights kept, cache intact)

  Histogram batch_size{1.0, 2.0, 12};
  Histogram encode_latency_us{1.0, 4.0, 16};  // cold path, per request
  Histogram hit_latency_us{1.0, 4.0, 16};     // cache-hit path, per request

  double CacheHitRate() const;
  std::string DumpText() const;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_METRICS_H_
