#include "serving/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "serving/wire.h"

namespace preqr::serving {
namespace {

// recv exactly n bytes. Returns 1 on success, 0 on clean EOF at the first
// byte (the client closed between frames), -1 on error/mid-frame EOF.
int ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return 1;
}

bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

bool WriteFrame(int fd, const std::string& payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return WriteFull(fd, frame.data(), frame.size());
}

void AppendError(std::string* reply, const Status& status) {
  wire::PutU8(reply, static_cast<uint8_t>(status.code()));
  wire::PutString(reply, status.message());
}

// Ok slot body shared by kEncode and kEncodeBatch replies.
void AppendResponse(std::string* reply, const EncodeResponse& response) {
  wire::PutU8(reply, 0);
  wire::PutU8(reply, response.cache_hit ? wire::kFlagCacheHit : 0);
  wire::PutF64(reply, response.queue_us);
  wire::PutF64(reply, response.encode_us);
  const auto& vec = response.embedding.vec();
  wire::PutU32(reply, static_cast<uint32_t>(vec.size()));
  for (float f : vec) wire::PutF32(reply, f);
}

// The request header shared by kEncode and kEncodeBatch: tenant routing,
// client identity, priority, and the relative timeout, converted here — at
// parse time — to the absolute steady-clock deadline the service works
// with.
bool ParseRequestHeader(wire::Reader* r, EncodeRequest* request) {
  uint32_t priority;
  int64_t timeout_us;
  if (!r->GetString(&request->tenant_id)) return false;
  if (!r->GetString(&request->client_id)) return false;
  if (!r->GetU32(&priority)) return false;
  if (!r->GetI64(&timeout_us)) return false;
  request->priority = static_cast<int32_t>(priority);
  request->deadline =
      timeout_us < 0 ? kNoDeadline
                     : DeadlineAfter(std::chrono::microseconds(timeout_us));
  return true;
}

}  // namespace

EncodeServer::EncodeServer(EncoderService* service, ServerOptions options)
    : service_(service), options_(options) {}

EncodeServer::~EncodeServer() { Stop(); }

Status EncodeServer::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");
  stopping_.store(false);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void EncodeServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Unblock accept(): shutdown is enough on Linux, close makes it certain.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    ::close(c->fd);
  }
}

void EncodeServer::ReapConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void EncodeServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by Stop()
    }
    ReapConnections();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (static_cast<int>(conns_.size()) >= options_.max_connections) {
        // Connection-level shed: close before reading anything. The client
        // observes kUnavailable on its next read.
        service_->metrics().net_connections_rejected.Increment();
        ::close(fd);
        continue;
      }
      service_->metrics().net_connections.Increment();
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      Connection* raw = conn.get();
      conn->thread = std::thread([this, raw] { ServeConnection(raw); });
      conns_.push_back(std::move(conn));
    }
  }
}

void EncodeServer::ServeConnection(Connection* conn) {
  const int fd = conn->fd;
  std::string payload;
  while (!stopping_.load()) {
    char header[4];
    const int r = ReadFull(fd, header, sizeof(header));
    if (r <= 0) break;  // clean close, peer error, or Stop()'s shutdown
    wire::Reader hr(header, sizeof(header));
    uint32_t frame_len = 0;
    hr.GetU32(&frame_len);
    if (frame_len == 0 || frame_len > wire::kMaxFrameBytes) {
      // Cannot resync a corrupt stream: answer and hang up.
      service_->metrics().net_bad_frames.Increment();
      std::string reply;
      AppendError(&reply,
                  Status::InvalidArgument("frame length out of bounds"));
      WriteFrame(fd, reply);
      break;
    }
    payload.resize(frame_len);
    if (ReadFull(fd, payload.data(), frame_len) != 1) break;
    service_->metrics().net_requests.Increment();
    if (!WriteFrame(fd, HandleFrame(payload))) break;
  }
  // Actually hang up: the fd itself is closed later (by the reaper or
  // Stop), but the peer must see EOF now, not at the next accept.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true);
}

std::string EncodeServer::HandleFrame(const std::string& payload) {
  std::string reply;
  wire::Reader r(payload);
  uint8_t version = 0;
  if (!r.GetU8(&version)) {
    service_->metrics().net_bad_frames.Increment();
    AppendError(&reply, Status::InvalidArgument("empty request frame"));
    return reply;
  }
  // The version gate runs before the opcode is even read: a stale peer must
  // get an explicit rejection, never a silent misparse of shifted fields.
  if (version != wire::kProtocolVersion) {
    service_->metrics().net_bad_frames.Increment();
    AppendError(&reply,
                Status::InvalidArgument(
                    "protocol version mismatch: got " +
                    std::to_string(version) + ", server speaks " +
                    std::to_string(wire::kProtocolVersion)));
    return reply;
  }
  uint8_t opcode = 0;
  if (!r.GetU8(&opcode)) {
    service_->metrics().net_bad_frames.Increment();
    AppendError(&reply, Status::InvalidArgument("missing opcode"));
    return reply;
  }
  switch (opcode) {
    case wire::kEncode: {
      EncodeRequest request;
      if (!ParseRequestHeader(&r, &request) || !r.GetString(&request.sql)) {
        break;
      }
      auto response = service_->Encode(request);
      if (response.ok()) {
        AppendResponse(&reply, response.value());
      } else {
        AppendError(&reply, response.status());
      }
      return reply;
    }
    case wire::kEncodeBatch: {
      EncodeRequest header;
      uint32_t count = 0;
      if (!ParseRequestHeader(&r, &header) || !r.GetU32(&count)) break;
      // Each slot needs at least its 4-byte length prefix; a count that
      // cannot fit in the remaining payload is a hostile frame, not a
      // reason to allocate.
      if (static_cast<uint64_t>(count) * 4 > r.remaining()) break;
      std::vector<EncodeRequest> requests(count, header);
      bool ok = true;
      for (uint32_t i = 0; i < count; ++i) {
        if (!r.GetString(&requests[i].sql)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      auto responses = service_->EncodeBatch(requests);
      wire::PutU8(&reply, 0);
      wire::PutU32(&reply, count);
      for (auto& slot : responses) {
        if (slot.ok()) {
          AppendResponse(&reply, slot.value());
        } else {
          AppendError(&reply, slot.status());
        }
      }
      return reply;
    }
    case wire::kMetrics: {
      wire::PutU8(&reply, 0);
      wire::PutString(&reply, service_->metrics().DumpText());
      return reply;
    }
    case wire::kReload: {
      std::string tenant_id;
      std::string path;
      if (!r.GetString(&tenant_id) || !r.GetString(&path)) break;
      const Status s = service_->ReloadModel(tenant_id, path);
      if (s.ok()) {
        wire::PutU8(&reply, 0);
      } else {
        AppendError(&reply, s);
      }
      return reply;
    }
    default: {
      service_->metrics().net_bad_frames.Increment();
      AppendError(&reply, Status::InvalidArgument(
                              "unknown opcode " + std::to_string(opcode)));
      return reply;
    }
  }
  // Shared fall-through for truncated bodies of known opcodes.
  service_->metrics().net_bad_frames.Increment();
  reply.clear();
  AppendError(&reply, Status::InvalidArgument("truncated request body"));
  return reply;
}

}  // namespace preqr::serving
