#ifndef PREQR_SERVING_WIRE_H_
#define PREQR_SERVING_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace preqr::serving::wire {

// Length-prefixed binary protocol spoken between EncodeClient and
// EncodeServer over a TCP stream. Everything is little-endian.
//
//   frame   := u32 payload_len, payload
//   request := u8 version, u8 opcode, body
//   reply   := u8 status_code, body          (code 0 = ok, else u32+msg)
//
// Every request leads with the protocol version byte; a mismatch is
// rejected with kInvalidArgument before the opcode is even read, so the
// request layout can evolve (v1 -> v2 added the tenant id) without a stale
// peer silently misparsing fields. Replies carry no version: the server
// always answers in the version the client just spoke.
//
// Request header (kEncode / kEncodeBatch):
//   header := u32+tenant_id, u32+client_id, i32 priority, i64 timeout_us
//
// Request bodies:
//   kEncode      := header, u32+sql
//   kEncodeBatch := header, u32 count, count x (u32+sql)
//   kMetrics     := (empty)
//   kReload      := u32+tenant_id, u32+path
//
// Ok reply bodies:
//   kEncode      := u8 flags (bit0 = cache hit), f64 queue_us,
//                   f64 encode_us, u32 dim, dim x f32
//   kEncodeBatch := u32 count, count x (u8 code, then the kEncode ok body
//                   or u32+msg)  — slots fail independently
//   kMetrics     := u32+text
//   kReload      := (empty)
//
// An empty tenant_id is the default tenant, so v2 clients that never
// mention tenants behave exactly like v1 did. Unknown tenant ids come back
// as kNotFound.
//
// Deadlines cross the wire as a *relative* timeout in microseconds
// (client and server clocks need not agree); the server converts to an
// absolute steady-clock deadline the moment the frame is parsed.
// timeout_us < 0 means no deadline.

// v1 had no version byte and no tenant id; v2 frames are not parseable as
// v1 (and vice versa), which is exactly why the version byte leads.
inline constexpr uint8_t kProtocolVersion = 2;

enum Opcode : uint8_t {
  kEncode = 1,
  kEncodeBatch = 2,
  kMetrics = 3,
  kReload = 4,
};

// Frames above this are rejected with kInvalidArgument before parsing —
// an accidental (or hostile) length prefix must not allocate gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

inline constexpr uint8_t kFlagCacheHit = 1u << 0;

// --- Little-endian append/read helpers over std::string buffers ----------

inline void PutU8(std::string* buf, uint8_t v) {
  buf->push_back(static_cast<char>(v));
}
inline void PutU32(std::string* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
inline void PutU64(std::string* buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
inline void PutI64(std::string* buf, int64_t v) {
  PutU64(buf, static_cast<uint64_t>(v));
}
inline void PutF64(std::string* buf, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(buf, bits);
}
inline void PutF32(std::string* buf, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(buf, bits);
}
inline void PutString(std::string* buf, const std::string& s) {
  PutU32(buf, static_cast<uint32_t>(s.size()));
  buf->append(s);
}

// Cursor-based reader; every Get* returns false on underrun instead of
// reading past the end, so a truncated frame degrades to a clean
// kInvalidArgument reply.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::string& buf) : Reader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }

  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetF32(float* v) {
    uint32_t bits;
    if (!GetU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (remaining() < len) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace preqr::serving::wire

#endif  // PREQR_SERVING_WIRE_H_
