#ifndef PREQR_TASKS_PREQR_ENCODER_H_
#define PREQR_TASKS_PREQR_ENCODER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/encoder.h"
#include "core/preqr_model.h"

namespace preqr::tasks {

// Adapts a pre-trained PreqrModel to the downstream encoder interfaces.
// Fine-tuning follows the paper: only the *last* SQLBERT (Trm_g) layer
// trains together with the task head; everything below is frozen, so the
// frozen prefix of each query is computed once and cached.
class PreqrEncoder : public baselines::QueryEncoder,
                     public baselines::SequenceEncoder {
 public:
  explicit PreqrEncoder(core::PreqrModel* model);

  nn::Tensor EncodeVector(const std::string& sql, bool train) override;
  nn::Tensor EncodeSequence(const std::string& sql, bool train) override;
  // Batched entry point: computes missing frozen prefixes and the per-query
  // read-outs across the global thread pool. Output i is bitwise-identical
  // to EncodeVector(sqls[i], train) — each query's computation is
  // independent, so scheduling cannot change results.
  std::vector<nn::Tensor> EncodeVectorBatch(const std::vector<std::string>& sqls,
                                            bool train);
  std::vector<nn::Tensor> TrainableParameters() override;
  // Structured read-out: [CLS ; mean(all) ; mean-of-span-means ;
  // max-of-span-means ; mean(tables)] over the final token states.
  int dim() const override { return 5 * model_->config().d_model; }
  int sequence_dim() const override { return model_->config().d_model; }
  std::string name() const override { return "PreQR"; }
  void BeginStep(bool train) override;

  // Drops cached prefixes (e.g. after further pre-training of the model).
  void InvalidateCache();

 private:
  struct CachedQuery {
    nn::Tensor prefix;  // frozen-prefix token states [S, d]
    // Predicate spans (each join/filter conjunct's token positions) and the
    // FROM-list positions, from the automaton symbolization. Pooling per
    // span keeps each predicate's column-op-value binding intact.
    std::vector<std::vector<int>> predicate_spans;
    std::vector<int> table_rows;
  };
  const CachedQuery& Prefix(const std::string& sql);
  // Computes the frozen prefix + span structure for one query without
  // touching the cache (safe to call from several threads at once).
  // Returns false for malformed queries.
  bool ComputeQuery(const std::string& sql, CachedQuery* out);
  // The structured read-out over one cached query (no set_train calls).
  nn::Tensor ReadOut(const CachedQuery& cached);

  core::PreqrModel* model_;
  nn::Tensor schema_;  // detached schema node encodings
  std::unordered_map<std::string, CachedQuery> prefix_cache_;
  CachedQuery empty_;
};

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_PREQR_ENCODER_H_
