#ifndef PREQR_TASKS_PREQR_ENCODER_H_
#define PREQR_TASKS_PREQR_ENCODER_H_

#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "core/preqr_model.h"

namespace preqr::tasks {

// Adapts a pre-trained PreqrModel to the downstream encoder interfaces.
// Fine-tuning follows the paper: only the *last* SQLBERT (Trm_g) layer
// trains together with the task head; everything below is frozen, so the
// frozen prefix of each query is computed once and cached in a sharded,
// size-bounded LRU (a frequent-query workload keeps re-visiting the same
// statements, so a bounded cache captures the hits without growing with
// the query log).
class PreqrEncoder : public baselines::QueryEncoder,
                     public baselines::SequenceEncoder {
 public:
  struct Options {
    // Total frozen-prefix entries held across all shards.
    size_t cache_capacity = 4096;
    int cache_shards = 8;
    // Run inference (train=false) encodes through the int8 quantized GEMM
    // path: Linear weights get per-tensor symmetric int8 shadows at
    // construction and on every InvalidateCache (i.e. after each model
    // reload), activations quantize dynamically per row. Training and the
    // one-time schema encoding stay float. See nn/quant.h.
    bool use_int8 = false;
  };

  explicit PreqrEncoder(core::PreqrModel* model);
  PreqrEncoder(core::PreqrModel* model, Options options);

  nn::Tensor EncodeVector(const std::string& sql, bool train) override;
  nn::Tensor EncodeSequence(const std::string& sql, bool train) override;
  // Status-propagating entry points: malformed SQL returns the parse error
  // instead of the zero fallback that EncodeVector keeps for the task
  // loops.
  StatusOr<nn::Tensor> TryEncodeVector(const std::string& sql,
                                       bool train) override;
  // Batched entry point: missing frozen prefixes and the per-query
  // read-outs run as genuine padded [B, T, d] forwards (chunks of up to
  // kMaxEncodeBatch queries); duplicate queries collapse onto one prefix
  // computation. Output i is bitwise-identical to
  // TryEncodeVector(sqls[i], train) at any batch composition — the batched
  // kernels partition per example, so neighbors (including malformed ones)
  // cannot change a query's bits (pinned by batch_invariance_test).
  std::vector<StatusOr<nn::Tensor>> TryEncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) override;
  std::vector<nn::Tensor> EncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) override;
  std::vector<nn::Tensor> TrainableParameters() override;
  // Structured read-out: [CLS ; mean(all) ; mean-of-span-means ;
  // max-of-span-means ; mean(tables)] over the final token states.
  int dim() const override { return 5 * model_->config().d_model; }
  int sequence_dim() const override { return model_->config().d_model; }
  std::string name() const override { return "PreQR"; }
  // The wrapped model (non-owned) — what AttachModel/RegisterTenant want
  // when this encoder backs a serving tenant.
  core::PreqrModel* model() const { return model_; }
  // Whether inference encodes run through the int8 quantized GEMM path.
  bool use_int8() const { return use_int8_; }
  void BeginStep(bool train) override;

  // Drops cached prefixes and re-encodes the frozen schema nodes (call
  // after further pre-training / incremental updates of the model).
  void InvalidateCache() override;

  // Prefix-cache observability (cache sizing, serving dashboards, tests).
  LruCacheStats cache_stats() const { return prefix_cache_.stats(); }
  size_t cached_queries() const { return prefix_cache_.size(); }

 private:
  // Queries per padded [B, T, d] forward; bounds the T_max * B slab a
  // single chunk allocates while keeping dispatch counts ~B times lower
  // than the per-query loop.
  static constexpr int kMaxEncodeBatch = 32;

  struct CachedQuery {
    nn::Tensor prefix;  // frozen-prefix token states [S, d]
    // Predicate spans (each join/filter conjunct's token positions) and the
    // FROM-list positions, from the automaton symbolization. Pooling per
    // span keeps each predicate's column-op-value binding intact.
    std::vector<std::vector<int>> predicate_spans;
    std::vector<int> table_rows;
  };
  // Cache-through lookup: returns the cached entry or computes + inserts
  // it; malformed queries propagate the parse error.
  StatusOr<CachedQuery> Prefix(const std::string& sql);
  // Computes the frozen prefix + span structure for one query without
  // touching the cache (safe to call from several threads at once).
  Status ComputeQuery(const std::string& sql, CachedQuery* out);
  // Span/table structure from the automaton symbolization over the first
  // `s` (possibly clipped) token positions.
  static void ExtractStructure(const text::SqlTokenizer::Tokenized& tokenized,
                               int s, CachedQuery* out);
  // Frozen prefixes + span structure for several queries at once: chunks of
  // parse-ok queries run as one padded EncodePrefixBatch each; parse errors
  // land in status[i] without touching their neighbors' chunks.
  void ComputeQueriesBatched(const std::vector<std::string>& sqls,
                             std::vector<CachedQuery>* computed,
                             std::vector<Status>* status);
  // The structured read-out over one cached query (no set_train calls).
  nn::Tensor ReadOut(const CachedQuery& cached);
  // Pooling half of ReadOut, over already-computed final token states.
  nn::Tensor PoolReadOut(const nn::Tensor& tokens, const CachedQuery& cached);
  // Zero-row entry used by the legacy fallback for malformed queries.
  CachedQuery ZeroEntry() const;

  core::PreqrModel* model_;
  bool use_int8_ = false;
  nn::Tensor schema_;  // detached schema node encodings
  ShardedLruCache<std::string, CachedQuery> prefix_cache_;
};

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_PREQR_ENCODER_H_
