#ifndef PREQR_TASKS_ESTIMATOR_H_
#define PREQR_TASKS_ESTIMATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/encoder.h"
#include "common/rng.h"
#include "nn/module.h"
#include "nn/optim.h"

namespace preqr::tasks {

// The paper's downstream prediction model: "a very simple 3-layer
// fully-connected model" on top of the query encoding (Section 4.3.2).
class Mlp3 : public nn::Module {
 public:
  Mlp3(int in_dim, int hidden, Rng& rng);
  nn::Tensor Forward(const nn::Tensor& x) const;  // [1, in] -> [1, 1]

 private:
  nn::Linear fc1_, fc2_, fc3_;
};

// Encoder + MLP regression on log1p(target); predictions are expm1'd back.
// Used for both cardinality and cost estimation.
class EstimatorModel {
 public:
  struct Options {
    int epochs = 12;
    int batch_size = 16;
    float lr = 1e-3f;
    int hidden = 64;
    uint64_t seed = 5;
    bool verbose = false;
  };

  EstimatorModel(baselines::QueryEncoder* encoder, Options options);

  // Trains on (sql, target); returns final training loss.
  double Fit(const std::vector<std::string>& sqls,
             const std::vector<double>& targets);

  // Trains while recording mean validation q-error after each epoch
  // (Figure 8's validation curves).
  std::vector<double> FitWithValidation(
      const std::vector<std::string>& train_sqls,
      const std::vector<double>& train_targets,
      const std::vector<std::string>& val_sqls,
      const std::vector<double>& val_targets);

  double Predict(const std::string& sql);
  std::vector<double> PredictAll(const std::vector<std::string>& sqls);

  // Status-returning prediction: unencodable SQL (e.g. unparseable text)
  // surfaces the encoder's error instead of silently riding its zero-vector
  // fallback the way Predict does.
  StatusOr<double> TryPredict(const std::string& sql);

  // Number of Predict() calls that rode the encoder's fallback features —
  // the model-level counterpart of the serving layer's
  // encode_fallback_total counter.
  uint64_t predict_fallback_total() const { return predict_fallback_total_; }

 private:
  nn::Tensor Features(const std::string& sql, bool train);
  StatusOr<nn::Tensor> TryFeatures(const std::string& sql);
  double ClampedExpm1(float log_pred) const;

  baselines::QueryEncoder* encoder_;
  Options options_;
  Rng rng_;
  std::unique_ptr<Mlp3> head_;
  std::unique_ptr<nn::Adam> opt_;
  bool encoder_static_;
  double last_train_loss_ = 0;
  // Largest log1p(target) seen during training; predictions are clamped to
  // this range (+margin) so out-of-distribution extrapolation cannot
  // dominate the tail statistics.
  float max_log_target_ = 25.0f;
  uint64_t predict_fallback_total_ = 0;
  // Per-query feature memo for static encoders. Holds successful encodes
  // only, so a cache hit proves the SQL is encodable (TryFeatures relies
  // on this); fallback features are recomputed per call.
  std::unordered_map<std::string, nn::Tensor> feature_cache_;
};

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_ESTIMATOR_H_
