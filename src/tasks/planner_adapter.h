#ifndef PREQR_TASKS_PLANNER_ADAPTER_H_
#define PREQR_TASKS_PLANNER_ADAPTER_H_

#include <string>
#include <utility>

#include "planner/cardinality.h"
#include "tasks/estimator.h"

namespace preqr::tasks {

// Adapts a trained EstimatorModel (e.g. PreQR encoding + MLP head) to the
// planner's CardinalityEstimator interface: the planner's induced subset
// statements are printed back to SQL and predicted like any workload query.
// The model must outlive the returned estimator.
inline planner::CallbackCardinalityEstimator MakePlannerEstimator(
    const db::Database& db, std::string name, EstimatorModel* model) {
  return planner::CallbackCardinalityEstimator(
      db, std::move(name),
      [model](const std::string& sql) { return model->Predict(sql); });
}

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_PLANNER_ADAPTER_H_
