#ifndef PREQR_TASKS_CLUSTERING_H_
#define PREQR_TASKS_CLUSTERING_H_

#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "sql/ast.h"

namespace preqr::tasks {

// AST-based similarity baselines for the clustering task.
enum class AstMetric { kAouiche, kAligon, kMakiyama };

// Parses all queries (malformed queries become empty statements).
std::vector<sql::SelectStatement> ParseAll(
    const std::vector<std::string>& queries);

// Full pairwise distance matrix under an AST metric.
std::vector<std::vector<double>> AstDistanceMatrix(
    const std::vector<sql::SelectStatement>& stmts, AstMetric metric);

// Full pairwise cosine-distance matrix over encoder embeddings
// (One-hotDis / Seq2SeqDis / PreQRDis).
std::vector<std::vector<double>> EmbeddingDistanceMatrix(
    const std::vector<std::string>& queries, baselines::QueryEncoder& encoder);

// Converts a distance matrix into similarities (1 - d).
std::vector<std::vector<double>> ToSimilarity(
    const std::vector<std::vector<double>>& distance);

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_CLUSTERING_H_
