#include "tasks/sql2text.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "eval/metrics.h"
#include "nn/ops.h"

namespace preqr::tasks {

TextVocab::TextVocab() {
  for (const char* w : {"[UNK]", "[BOS]", "[EOS]"}) {
    index_[w] = static_cast<int>(words_.size());
    words_.push_back(w);
  }
}

void TextVocab::Build(const std::vector<workload::TextPair>& pairs) {
  for (const auto& pair : pairs) {
    for (const auto& w : pair.text) {
      if (index_.find(w) == index_.end()) {
        index_[w] = static_cast<int>(words_.size());
        words_.push_back(w);
      }
    }
  }
}

int TextVocab::Id(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnk : it->second;
}

TextDecoder::TextDecoder(int vocab_size, int dim, int enc_dim, Rng& rng)
    : dim_(dim),
      embedding_(vocab_size, dim, rng),
      memory_proj_(enc_dim, dim, rng),
      gru_(dim, dim, rng),
      attn_combine_(2 * dim, dim, rng),
      out_(dim, vocab_size, rng) {
  RegisterChild("embedding", &embedding_);
  RegisterChild("memory_proj", &memory_proj_);
  RegisterChild("gru", &gru_);
  RegisterChild("attn_combine", &attn_combine_);
  RegisterChild("out", &out_);
}

std::pair<nn::Tensor, nn::Tensor> TextDecoder::Step(
    const nn::Tensor& memory_proj, int prev_id,
    const nn::Tensor& state) const {
  nn::Tensor x = embedding_.Forward({prev_id});        // [1, dim]
  nn::Tensor h = gru_.Forward(x, state);               // [1, dim]
  // Attention: softmax(h M^T / sqrt(d)) M.
  nn::Tensor scores = nn::Scale(
      nn::MatMul(h, nn::Transpose(memory_proj)),
      1.0f / std::sqrt(static_cast<float>(dim_)));     // [1, S]
  nn::Tensor context = nn::MatMul(nn::SoftmaxLastDim(scores), memory_proj);
  nn::Tensor combined =
      nn::Tanh(attn_combine_.Forward(nn::ConcatLastDim({h, context})));
  return {out_.Forward(combined), h};
}

nn::Tensor TextDecoder::TrainLoss(const nn::Tensor& memory,
                                  const std::vector<int>& target_ids) const {
  nn::Tensor memory_proj = memory_proj_.Forward(memory);
  nn::Tensor state = nn::Reshape(nn::MeanRows(memory_proj), {1, dim_});
  std::vector<nn::Tensor> logits;
  std::vector<int> targets;
  int prev = TextVocab::kBos;
  for (int t : target_ids) {
    auto [step_logits, new_state] = Step(memory_proj, prev, state);
    logits.push_back(step_logits);
    targets.push_back(t);
    state = new_state;
    prev = t;
  }
  auto [eos_logits, final_state] = Step(memory_proj, prev, state);
  logits.push_back(eos_logits);
  targets.push_back(TextVocab::kEos);
  return nn::CrossEntropy(nn::ConcatRows(logits), targets, -1);
}

std::vector<int> TextDecoder::Generate(const nn::Tensor& memory,
                                       int max_len) const {
  nn::Tensor memory_proj = memory_proj_.Forward(memory);
  nn::Tensor state = nn::Reshape(nn::MeanRows(memory_proj), {1, dim_});
  std::vector<int> out;
  int prev = TextVocab::kBos;
  for (int step = 0; step < max_len; ++step) {
    auto [logits, new_state] = Step(memory_proj, prev, state);
    state = new_state;
    int best = 0;
    for (int v = 1; v < logits.dim(1); ++v) {
      if (logits.at(v) > logits.at(best)) best = v;
    }
    if (best == TextVocab::kEos) break;
    out.push_back(best);
    prev = best;
  }
  return out;
}

Sql2TextModel::Sql2TextModel(baselines::SequenceEncoder* encoder,
                             Options options)
    : encoder_(encoder), options_(options), rng_(options.seed) {}

void Sql2TextModel::Fit(const std::vector<workload::TextPair>& train_pairs) {
  vocab_.Build(train_pairs);
  decoder_ = std::make_unique<TextDecoder>(vocab_.size(), options_.dim,
                                           encoder_->sequence_dim(), rng_);
  std::vector<nn::Tensor> params = decoder_->Parameters();
  for (const auto& t : encoder_->TrainableParameters()) params.push_back(t);
  opt_ = std::make_unique<nn::Adam>(params, options_.lr);

  std::vector<size_t> order(train_pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.NextUint64(i)]);
    }
    double loss_sum = 0;
    for (size_t qi : order) {
      const auto& pair = train_pairs[qi];
      std::vector<int> target;
      for (const auto& w : pair.text) target.push_back(vocab_.Id(w));
      opt_->ZeroGrad();
      nn::Tensor memory = encoder_->EncodeSequence(pair.sql, /*train=*/true);
      nn::Tensor loss = decoder_->TrainLoss(memory, target);
      loss.Backward();
      opt_->Step();
      loss_sum += loss.item();
    }
    if (options_.verbose) {
      std::fprintf(stderr, "[sql2text %s] epoch %d loss=%.4f\n",
                   encoder_->name().c_str(), epoch,
                   loss_sum / static_cast<double>(order.size()));
    }
  }
}

std::vector<std::string> Sql2TextModel::Generate(const std::string& sql) {
  PREQR_CHECK(decoder_ != nullptr);
  nn::Tensor memory = encoder_->EncodeSequence(sql, /*train=*/false);
  std::vector<std::string> out;
  for (int id : decoder_->Generate(memory, options_.max_len)) {
    out.push_back(vocab_.Word(id));
  }
  return out;
}

double Sql2TextModel::EvalBleu(
    const std::vector<workload::TextPair>& eval_pairs) {
  std::vector<std::vector<std::string>> refs, cands;
  for (const auto& pair : eval_pairs) {
    refs.push_back(pair.text);
    cands.push_back(Generate(pair.sql));
  }
  return eval::Bleu(refs, cands);
}

}  // namespace preqr::tasks
