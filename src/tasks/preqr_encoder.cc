#include "tasks/preqr_encoder.h"

#include <optional>
#include <unordered_map>
#include <utility>

#include "automaton/symbol.h"
#include "common/thread_pool.h"
#include "nn/ops.h"

namespace preqr::tasks {

PreqrEncoder::PreqrEncoder(core::PreqrModel* model)
    : PreqrEncoder(model, Options()) {}

PreqrEncoder::PreqrEncoder(core::PreqrModel* model, Options options)
    : model_(model),
      prefix_cache_(options.cache_capacity, options.cache_shards) {
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

void PreqrEncoder::BeginStep(bool /*train*/) {
  // The schema branch is below the fine-tuned layer boundary, so it stays
  // frozen; nothing to refresh.
}

void PreqrEncoder::InvalidateCache() {
  prefix_cache_.Clear();
  // The model memoizes its own inference schema encoding for Encode();
  // after a weight change (further pre-training or a hot reload) that
  // cache is stale too — drop it alongside ours.
  model_->InvalidateSchemaCache();
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

StatusOr<PreqrEncoder::CachedQuery> PreqrEncoder::Prefix(
    const std::string& sql) {
  if (auto hit = prefix_cache_.Get(sql)) return std::move(*hit);
  CachedQuery entry;
  Status status = ComputeQuery(sql, &entry);
  if (!status.ok()) return status;
  prefix_cache_.Put(sql, entry);
  return entry;
}

PreqrEncoder::CachedQuery PreqrEncoder::ZeroEntry() const {
  // A single zero row keeps downstream shapes valid.
  CachedQuery zero;
  zero.prefix = nn::Tensor::Zeros({1, model_->config().d_model});
  return zero;
}

Status PreqrEncoder::ComputeQuery(const std::string& sql, CachedQuery* out) {
  auto tokenized = model_->tokenizer().Tokenize(sql);
  if (!tokenized.ok()) return tokenized.status();
  CachedQuery& entry = *out;
  entry.predicate_spans.clear();
  entry.table_rows.clear();
  entry.prefix = model_->EncodePrefix(tokenized.value(), schema_);
  using automaton::Symbol;
  const int s = entry.prefix.dim(0);
  // Predicate spans: maximal runs of predicate-body symbols (a column, its
  // operator, and its literals / rhs column) inside the WHERE region.
  auto is_pred_symbol = [](Symbol sym) {
    switch (sym) {
      case Symbol::kColumn:
      case Symbol::kOpEq:
      case Symbol::kOpNe:
      case Symbol::kOpLt:
      case Symbol::kOpLe:
      case Symbol::kOpGt:
      case Symbol::kOpGe:
      case Symbol::kLike:
      case Symbol::kIn:
      case Symbol::kBetween:
      case Symbol::kNot:
      case Symbol::kValueNum:
      case Symbol::kValueStr:
      case Symbol::kLParen:
      case Symbol::kRParen:
        return true;
      default:
        return false;
    }
  };
  std::vector<int> current;
  const auto& symbols = tokenized.value().symbols;
  for (int i = 0; i < s && i < static_cast<int>(symbols.size()); ++i) {
    const Symbol sym = symbols[static_cast<size_t>(i)];
    if (is_pred_symbol(sym)) {
      current.push_back(i);
    } else {
      if (!current.empty()) entry.predicate_spans.push_back(current);
      current.clear();
      if (sym == Symbol::kTable) entry.table_rows.push_back(i);
    }
  }
  if (!current.empty()) entry.predicate_spans.push_back(current);
  return Status::Ok();
}

nn::Tensor PreqrEncoder::EncodeVector(const std::string& sql, bool train) {
  auto result = TryEncodeVector(sql, train);
  if (result.ok()) return std::move(result).value();
  // Legacy fallback for the task loops: malformed queries read out zeros.
  std::optional<nn::NoGradGuard> no_grad;
  if (!train) no_grad.emplace();
  model_->set_train(train);
  nn::Tensor v = ReadOut(ZeroEntry());
  model_->set_train(false);
  return v;
}

StatusOr<nn::Tensor> PreqrEncoder::TryEncodeVector(const std::string& sql,
                                                   bool train) {
  // Inference encodes never take gradients; only fine-tuning (train=true)
  // needs the tape through the last layer's read-out.
  std::optional<nn::NoGradGuard> no_grad;
  if (!train) no_grad.emplace();
  model_->set_train(train);
  auto cached = Prefix(sql);
  if (!cached.ok()) {
    model_->set_train(false);
    return cached.status();
  }
  nn::Tensor v = ReadOut(cached.value());
  model_->set_train(false);
  return v;
}

nn::Tensor PreqrEncoder::ReadOut(const CachedQuery& cached) {
  auto enc = model_->LastLayer(cached.prefix, schema_);
  // Structured read-out over the final token states: the aggregate [CLS],
  // the global mean, mean/max pools over per-predicate span means (set
  // pooling that keeps each predicate's column-op-value binding), and the
  // FROM-list pool. The automaton provides the span structure.
  const int d = model_->config().d_model;
  nn::Tensor mean = nn::Reshape(nn::MeanRows(enc.tokens), {1, d});
  nn::Tensor span_mean, span_max;
  if (cached.predicate_spans.empty()) {
    span_mean = nn::Tensor::Zeros({1, d});
    span_max = nn::Tensor::Zeros({1, d});
  } else {
    std::vector<nn::Tensor> spans;
    spans.reserve(cached.predicate_spans.size());
    for (const auto& rows : cached.predicate_spans) {
      spans.push_back(
          nn::Reshape(nn::MeanRowsSubset(enc.tokens, rows), {1, d}));
    }
    nn::Tensor stacked = nn::ConcatRows(spans);  // [P, d]
    // Sum pooling over spans: per-conjunct contributions add up, matching
    // the log-additive structure of join/filter cardinality factors.
    span_mean = nn::Scale(
        nn::Reshape(nn::MeanRows(stacked), {1, d}),
        static_cast<float>(cached.predicate_spans.size()));
    span_max = nn::Reshape(nn::MaxRows(stacked), {1, d});
  }
  nn::Tensor tabs = nn::Scale(
      nn::Reshape(nn::MeanRowsSubset(enc.tokens, cached.table_rows), {1, d}),
      static_cast<float>(cached.table_rows.size()));
  return nn::ConcatLastDim({enc.cls, mean, span_mean, span_max, tabs});
}

std::vector<StatusOr<nn::Tensor>> PreqrEncoder::TryEncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  model_->set_train(train);
  const size_t n = sqls.size();
  // Serial cache probe; duplicate misses collapse onto one computation.
  std::vector<std::optional<CachedQuery>> hit(n);
  std::vector<int> miss_of(n, -1);
  std::vector<std::string> miss_sqls;
  std::unordered_map<std::string, int> miss_index;
  for (size_t i = 0; i < n; ++i) {
    if (auto h = prefix_cache_.Get(sqls[i])) {
      hit[i] = std::move(h);
      continue;
    }
    auto [it, inserted] =
        miss_index.emplace(sqls[i], static_cast<int>(miss_sqls.size()));
    if (inserted) miss_sqls.push_back(sqls[i]);
    miss_of[i] = it->second;
  }
  // Compute missing frozen prefixes in parallel into per-query slots (the
  // cache itself is not touched from worker threads).
  std::vector<CachedQuery> computed(miss_sqls.size());
  std::vector<Status> miss_status(miss_sqls.size());
  ParallelFor(0, static_cast<int64_t>(miss_sqls.size()), 1,
              [&](int64_t b0, int64_t b1) {
                for (int64_t m = b0; m < b1; ++m) {
                  miss_status[static_cast<size_t>(m)] =
                      ComputeQuery(miss_sqls[static_cast<size_t>(m)],
                                   &computed[static_cast<size_t>(m)]);
                }
              });
  // Serial cache insertion in first-occurrence order.
  for (size_t m = 0; m < miss_sqls.size(); ++m) {
    if (miss_status[m].ok()) prefix_cache_.Put(miss_sqls[m], computed[m]);
  }
  // Per-query read-outs in parallel; each output slot is independent, so
  // scheduling cannot change bits.
  std::vector<nn::Tensor> tensors(n);
  ParallelFor(0, static_cast<int64_t>(n), 1, [&](int64_t b0, int64_t b1) {
    // GradMode is per-thread: each pool worker (and the caller) installs
    // its own guard for inference read-outs.
    std::optional<nn::NoGradGuard> no_grad;
    if (!train) no_grad.emplace();
    for (int64_t i = b0; i < b1; ++i) {
      const size_t s = static_cast<size_t>(i);
      const CachedQuery* entry = nullptr;
      if (hit[s]) {
        entry = &*hit[s];
      } else if (miss_status[static_cast<size_t>(miss_of[s])].ok()) {
        entry = &computed[static_cast<size_t>(miss_of[s])];
      }
      if (entry != nullptr) tensors[s] = ReadOut(*entry);
    }
  });
  model_->set_train(false);
  std::vector<StatusOr<nn::Tensor>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (tensors[i].defined()) {
      out.push_back(std::move(tensors[i]));
    } else {
      out.push_back(miss_status[static_cast<size_t>(miss_of[i])]);
    }
  }
  return out;
}

std::vector<nn::Tensor> PreqrEncoder::EncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  auto results = TryEncodeVectorBatch(sqls, train);
  std::vector<nn::Tensor> out;
  out.reserve(results.size());
  for (auto& r : results) {
    if (r.ok()) {
      out.push_back(std::move(r).value());
    } else {
      std::optional<nn::NoGradGuard> no_grad;
      if (!train) no_grad.emplace();
      model_->set_train(train);
      out.push_back(ReadOut(ZeroEntry()));
      model_->set_train(false);
    }
  }
  return out;
}

nn::Tensor PreqrEncoder::EncodeSequence(const std::string& sql, bool train) {
  std::optional<nn::NoGradGuard> no_grad;
  if (!train) no_grad.emplace();
  model_->set_train(train);
  auto cached = Prefix(sql);
  auto enc = model_->LastLayer(
      cached.ok() ? cached.value().prefix : ZeroEntry().prefix, schema_);
  model_->set_train(false);
  return enc.tokens;  // [S, d]
}

std::vector<nn::Tensor> PreqrEncoder::TrainableParameters() {
  return model_->LastLayerParameters();
}

}  // namespace preqr::tasks
