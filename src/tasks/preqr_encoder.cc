#include "tasks/preqr_encoder.h"

#include "automaton/symbol.h"
#include "nn/ops.h"

namespace preqr::tasks {

PreqrEncoder::PreqrEncoder(core::PreqrModel* model) : model_(model) {
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

void PreqrEncoder::BeginStep(bool /*train*/) {
  // The schema branch is below the fine-tuned layer boundary, so it stays
  // frozen; nothing to refresh.
}

void PreqrEncoder::InvalidateCache() {
  prefix_cache_.clear();
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

const PreqrEncoder::CachedQuery& PreqrEncoder::Prefix(const std::string& sql) {
  auto it = prefix_cache_.find(sql);
  if (it != prefix_cache_.end()) return it->second;
  auto tokenized = model_->tokenizer().Tokenize(sql);
  if (!tokenized.ok()) {
    // Malformed query: a single zero row keeps downstream shapes valid.
    empty_.prefix = nn::Tensor::Zeros({1, model_->config().d_model});
    empty_.predicate_spans.clear();
    empty_.table_rows.clear();
    return empty_;
  }
  CachedQuery entry;
  entry.prefix = model_->EncodePrefix(tokenized.value(), schema_);
  using automaton::Symbol;
  const int s = entry.prefix.dim(0);
  // Predicate spans: maximal runs of predicate-body symbols (a column, its
  // operator, and its literals / rhs column) inside the WHERE region.
  auto is_pred_symbol = [](Symbol sym) {
    switch (sym) {
      case Symbol::kColumn:
      case Symbol::kOpEq:
      case Symbol::kOpNe:
      case Symbol::kOpLt:
      case Symbol::kOpLe:
      case Symbol::kOpGt:
      case Symbol::kOpGe:
      case Symbol::kLike:
      case Symbol::kIn:
      case Symbol::kBetween:
      case Symbol::kNot:
      case Symbol::kValueNum:
      case Symbol::kValueStr:
      case Symbol::kLParen:
      case Symbol::kRParen:
        return true;
      default:
        return false;
    }
  };
  std::vector<int> current;
  const auto& symbols = tokenized.value().symbols;
  for (int i = 0; i < s && i < static_cast<int>(symbols.size()); ++i) {
    const Symbol sym = symbols[static_cast<size_t>(i)];
    if (is_pred_symbol(sym)) {
      current.push_back(i);
    } else {
      if (!current.empty()) entry.predicate_spans.push_back(current);
      current.clear();
      if (sym == Symbol::kTable) entry.table_rows.push_back(i);
    }
  }
  if (!current.empty()) entry.predicate_spans.push_back(current);
  return prefix_cache_.emplace(sql, std::move(entry)).first->second;
}

nn::Tensor PreqrEncoder::EncodeVector(const std::string& sql, bool train) {
  model_->set_train(train);
  const CachedQuery& cached = Prefix(sql);
  auto enc = model_->LastLayer(cached.prefix, schema_);
  model_->set_train(false);
  // Structured read-out over the final token states: the aggregate [CLS],
  // the global mean, mean/max pools over per-predicate span means (set
  // pooling that keeps each predicate's column-op-value binding), and the
  // FROM-list pool. The automaton provides the span structure.
  const int d = model_->config().d_model;
  nn::Tensor mean = nn::Reshape(nn::MeanRows(enc.tokens), {1, d});
  nn::Tensor span_mean, span_max;
  if (cached.predicate_spans.empty()) {
    span_mean = nn::Tensor::Zeros({1, d});
    span_max = nn::Tensor::Zeros({1, d});
  } else {
    std::vector<nn::Tensor> spans;
    spans.reserve(cached.predicate_spans.size());
    for (const auto& rows : cached.predicate_spans) {
      spans.push_back(
          nn::Reshape(nn::MeanRowsSubset(enc.tokens, rows), {1, d}));
    }
    nn::Tensor stacked = nn::ConcatRows(spans);  // [P, d]
    // Sum pooling over spans: per-conjunct contributions add up, matching
    // the log-additive structure of join/filter cardinality factors.
    span_mean = nn::Scale(
        nn::Reshape(nn::MeanRows(stacked), {1, d}),
        static_cast<float>(cached.predicate_spans.size()));
    span_max = nn::Reshape(nn::MaxRows(stacked), {1, d});
  }
  nn::Tensor tabs = nn::Scale(
      nn::Reshape(nn::MeanRowsSubset(enc.tokens, cached.table_rows), {1, d}),
      static_cast<float>(cached.table_rows.size()));
  return nn::ConcatLastDim({enc.cls, mean, span_mean, span_max, tabs});
}

nn::Tensor PreqrEncoder::EncodeSequence(const std::string& sql, bool train) {
  model_->set_train(train);
  auto enc = model_->LastLayer(Prefix(sql).prefix, schema_);
  model_->set_train(false);
  return enc.tokens;  // [S, d]
}

std::vector<nn::Tensor> PreqrEncoder::TrainableParameters() {
  return model_->LastLayerParameters();
}

}  // namespace preqr::tasks
