#include "tasks/preqr_encoder.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "automaton/symbol.h"
#include "nn/ops.h"
#include "nn/quant.h"
#include "serving/metrics.h"

namespace preqr::tasks {

PreqrEncoder::PreqrEncoder(core::PreqrModel* model)
    : PreqrEncoder(model, Options()) {}

PreqrEncoder::PreqrEncoder(core::PreqrModel* model, Options options)
    : model_(model),
      use_int8_(options.use_int8),
      prefix_cache_(options.cache_capacity, options.cache_shards) {
  // Calibrate before anything encodes: shadows are inert until a thread
  // installs an Int8Guard, so the schema encoding below stays float.
  if (use_int8_) nn::quant::CalibrateModule(*model_);
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

void PreqrEncoder::BeginStep(bool /*train*/) {
  // The schema branch is below the fine-tuned layer boundary, so it stays
  // frozen; nothing to refresh.
}

void PreqrEncoder::InvalidateCache() {
  prefix_cache_.Clear();
  // The model memoizes its own inference schema encoding for Encode();
  // after a weight change (further pre-training or a hot reload) that
  // cache is stale too — drop it alongside ours.
  model_->InvalidateSchemaCache();
  // Re-quantize from the new float weights so the int8 shadows never serve
  // stale values after a reload / further pre-training.
  if (use_int8_) nn::quant::CalibrateModule(*model_);
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

StatusOr<PreqrEncoder::CachedQuery> PreqrEncoder::Prefix(
    const std::string& sql) {
  if (auto hit = prefix_cache_.Get(sql)) return std::move(*hit);
  CachedQuery entry;
  Status status = ComputeQuery(sql, &entry);
  if (!status.ok()) return status;
  prefix_cache_.Put(sql, entry);
  return entry;
}

PreqrEncoder::CachedQuery PreqrEncoder::ZeroEntry() const {
  // A single zero row keeps downstream shapes valid.
  CachedQuery zero;
  zero.prefix = nn::Tensor::Zeros({1, model_->config().d_model});
  return zero;
}

Status PreqrEncoder::ComputeQuery(const std::string& sql, CachedQuery* out) {
  auto tokenized = model_->tokenizer().Tokenize(sql);
  if (!tokenized.ok()) return tokenized.status();
  out->prefix = model_->EncodePrefix(tokenized.value(), schema_);
  ExtractStructure(tokenized.value(), out->prefix.dim(0), out);
  return Status::Ok();
}

void PreqrEncoder::ExtractStructure(
    const text::SqlTokenizer::Tokenized& tokenized, int s, CachedQuery* out) {
  CachedQuery& entry = *out;
  entry.predicate_spans.clear();
  entry.table_rows.clear();
  using automaton::Symbol;
  // Predicate spans: maximal runs of predicate-body symbols (a column, its
  // operator, and its literals / rhs column) inside the WHERE region.
  auto is_pred_symbol = [](Symbol sym) {
    switch (sym) {
      case Symbol::kColumn:
      case Symbol::kOpEq:
      case Symbol::kOpNe:
      case Symbol::kOpLt:
      case Symbol::kOpLe:
      case Symbol::kOpGt:
      case Symbol::kOpGe:
      case Symbol::kLike:
      case Symbol::kIn:
      case Symbol::kBetween:
      case Symbol::kNot:
      case Symbol::kValueNum:
      case Symbol::kValueStr:
      case Symbol::kLParen:
      case Symbol::kRParen:
        return true;
      default:
        return false;
    }
  };
  std::vector<int> current;
  const auto& symbols = tokenized.symbols;
  for (int i = 0; i < s && i < static_cast<int>(symbols.size()); ++i) {
    const Symbol sym = symbols[static_cast<size_t>(i)];
    if (is_pred_symbol(sym)) {
      current.push_back(i);
    } else {
      if (!current.empty()) entry.predicate_spans.push_back(current);
      current.clear();
      if (sym == Symbol::kTable) entry.table_rows.push_back(i);
    }
  }
  if (!current.empty()) entry.predicate_spans.push_back(current);
}

void PreqrEncoder::ComputeQueriesBatched(const std::vector<std::string>& sqls,
                                         std::vector<CachedQuery>* computed,
                                         std::vector<Status>* status) {
  const size_t m = sqls.size();
  computed->assign(m, CachedQuery());
  status->assign(m, Status::Ok());
  // Tokenize serially; a parse error stays in its own slot so a malformed
  // query never joins (or poisons) a padded chunk.
  std::vector<std::optional<text::SqlTokenizer::Tokenized>> toks(m);
  std::vector<size_t> valid;
  valid.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    auto t = model_->tokenizer().Tokenize(sqls[i]);
    if (!t.ok()) {
      (*status)[i] = t.status();
      continue;
    }
    toks[i] = std::move(t.value());
    valid.push_back(i);
  }
  // Chunked padded prefix forwards: each chunk is ONE [B, T, d] pass over
  // the frozen layers instead of B separate per-query forwards.
  for (size_t c0 = 0; c0 < valid.size(); c0 += kMaxEncodeBatch) {
    const size_t c1 =
        std::min(valid.size(), c0 + static_cast<size_t>(kMaxEncodeBatch));
    std::vector<const text::SqlTokenizer::Tokenized*> items;
    items.reserve(c1 - c0);
    for (size_t j = c0; j < c1; ++j) items.push_back(&*toks[valid[j]]);
    const auto batch =
        text::SqlTokenizer::Collate(items, model_->config().max_seq_len);
    uint64_t valid_tokens = 0;
    for (int len : batch.lengths) valid_tokens += static_cast<uint64_t>(len);
    serving::RecordPaddedBatch(batch.batch_size, batch.t_max, valid_tokens);
    nn::Tensor prefixes = model_->EncodePrefixBatch(batch, schema_);
    // Slice each example's valid rows back out (tape-free, like the
    // single-query EncodePrefix results these replace bit for bit).
    nn::NoGradGuard no_grad;
    for (size_t j = c0; j < c1; ++j) {
      CachedQuery& entry = (*computed)[valid[j]];
      const int len = batch.lengths[j - c0];
      entry.prefix =
          nn::SliceExample(prefixes, static_cast<int>(j - c0), len);
      ExtractStructure(*toks[valid[j]], len, &entry);
    }
  }
}

nn::Tensor PreqrEncoder::EncodeVector(const std::string& sql, bool train) {
  auto result = TryEncodeVector(sql, train);
  if (result.ok()) return std::move(result).value();
  // Legacy fallback for the task loops: malformed queries read out zeros.
  // No longer silent — counted process-wide, logged once per distinct error.
  serving::RecordEncodeFallback(result.status().ToString());
  std::optional<nn::NoGradGuard> no_grad;
  std::optional<nn::quant::Int8Guard> int8;
  if (!train) {
    no_grad.emplace();
    if (use_int8_) int8.emplace(true);
  }
  model_->set_train(train);
  nn::Tensor v = ReadOut(ZeroEntry());
  model_->set_train(false);
  return v;
}

StatusOr<nn::Tensor> PreqrEncoder::TryEncodeVector(const std::string& sql,
                                                   bool train) {
  // Inference encodes never take gradients; only fine-tuning (train=true)
  // needs the tape through the last layer's read-out.
  std::optional<nn::NoGradGuard> no_grad;
  std::optional<nn::quant::Int8Guard> int8;
  if (!train) {
    no_grad.emplace();
    if (use_int8_) {
      int8.emplace(true);
      serving::RecordInt8Encode();
    }
  }
  model_->set_train(train);
  auto cached = Prefix(sql);
  if (!cached.ok()) {
    model_->set_train(false);
    return cached.status();
  }
  nn::Tensor v = ReadOut(cached.value());
  model_->set_train(false);
  return v;
}

nn::Tensor PreqrEncoder::ReadOut(const CachedQuery& cached) {
  auto enc = model_->LastLayer(cached.prefix, schema_);
  return PoolReadOut(enc.tokens, cached);
}

nn::Tensor PreqrEncoder::PoolReadOut(const nn::Tensor& tokens,
                                     const CachedQuery& cached) {
  // Structured read-out over the final token states: the aggregate [CLS],
  // the global mean, mean/max pools over per-predicate span means (set
  // pooling that keeps each predicate's column-op-value binding), and the
  // FROM-list pool. The automaton provides the span structure.
  const int d = model_->config().d_model;
  nn::Tensor cls = nn::SliceRows(tokens, 0, 1);
  nn::Tensor mean = nn::Reshape(nn::MeanRows(tokens), {1, d});
  nn::Tensor span_mean, span_max;
  if (cached.predicate_spans.empty()) {
    span_mean = nn::Tensor::Zeros({1, d});
    span_max = nn::Tensor::Zeros({1, d});
  } else {
    std::vector<nn::Tensor> spans;
    spans.reserve(cached.predicate_spans.size());
    for (const auto& rows : cached.predicate_spans) {
      spans.push_back(nn::Reshape(nn::MeanRowsSubset(tokens, rows), {1, d}));
    }
    nn::Tensor stacked = nn::ConcatRows(spans);  // [P, d]
    // Sum pooling over spans: per-conjunct contributions add up, matching
    // the log-additive structure of join/filter cardinality factors.
    span_mean = nn::Scale(
        nn::Reshape(nn::MeanRows(stacked), {1, d}),
        static_cast<float>(cached.predicate_spans.size()));
    span_max = nn::Reshape(nn::MaxRows(stacked), {1, d});
  }
  nn::Tensor tabs = nn::Scale(
      nn::Reshape(nn::MeanRowsSubset(tokens, cached.table_rows), {1, d}),
      static_cast<float>(cached.table_rows.size()));
  return nn::ConcatLastDim({cls, mean, span_mean, span_max, tabs});
}

std::vector<StatusOr<nn::Tensor>> PreqrEncoder::TryEncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  // Inference batches opt the whole encode (frozen prefix computation and
  // the read-out below) into the int8 path. The guard is thread-local and
  // every op dispatches on this thread — kernels only fan *loops* out to
  // the pool — so the switch cannot leak into unrelated work.
  std::optional<nn::quant::Int8Guard> int8;
  if (!train && use_int8_) {
    int8.emplace(true);
    serving::RecordInt8Encode();
  }
  model_->set_train(train);
  const size_t n = sqls.size();
  // Serial cache probe; duplicate misses collapse onto one computation.
  std::vector<std::optional<CachedQuery>> hit(n);
  std::vector<int> miss_of(n, -1);
  std::vector<std::string> miss_sqls;
  std::unordered_map<std::string, int> miss_index;
  for (size_t i = 0; i < n; ++i) {
    if (auto h = prefix_cache_.Get(sqls[i])) {
      hit[i] = std::move(h);
      continue;
    }
    auto [it, inserted] =
        miss_index.emplace(sqls[i], static_cast<int>(miss_sqls.size()));
    if (inserted) miss_sqls.push_back(sqls[i]);
    miss_of[i] = it->second;
  }
  // Missing frozen prefixes: one padded [B, T, d] forward per chunk of
  // distinct misses (inside, the kernels parallelize over the flattened
  // rows — far better occupancy than one task per query).
  std::vector<CachedQuery> computed;
  std::vector<Status> miss_status;
  ComputeQueriesBatched(miss_sqls, &computed, &miss_status);
  // Serial cache insertion in first-occurrence order.
  for (size_t m = 0; m < miss_sqls.size(); ++m) {
    if (miss_status[m].ok()) prefix_cache_.Put(miss_sqls[m], computed[m]);
  }
  // Resolve each slot's entry: cache hit, freshly computed, or error.
  std::vector<const CachedQuery*> entries(n, nullptr);
  std::vector<size_t> slots;
  slots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (hit[i]) {
      entries[i] = &*hit[i];
    } else if (miss_status[static_cast<size_t>(miss_of[i])].ok()) {
      entries[i] = &computed[static_cast<size_t>(miss_of[i])];
    }
    if (entries[i] != nullptr) slots.push_back(i);
  }
  // Batched read-out: pad the resolved prefixes into [B, T, d] chunks, run
  // the last Trm_g layer once per chunk, then slice and pool per slot. In
  // train mode the tape runs through the padded pass, so last-layer
  // parameter gradients match the per-query ReadOut sum.
  std::vector<nn::Tensor> tensors(n);
  std::optional<nn::NoGradGuard> no_grad;
  if (!train) no_grad.emplace();
  for (size_t c0 = 0; c0 < slots.size(); c0 += kMaxEncodeBatch) {
    const size_t c1 =
        std::min(slots.size(), c0 + static_cast<size_t>(kMaxEncodeBatch));
    std::vector<nn::Tensor> prefixes;
    std::vector<int> lengths;
    prefixes.reserve(c1 - c0);
    lengths.reserve(c1 - c0);
    uint64_t valid_tokens = 0;
    int t_max = 0;
    for (size_t j = c0; j < c1; ++j) {
      const nn::Tensor& p = entries[slots[j]]->prefix;
      prefixes.push_back(p);
      lengths.push_back(p.dim(0));
      valid_tokens += static_cast<uint64_t>(p.dim(0));
      t_max = std::max(t_max, p.dim(0));
    }
    serving::RecordPaddedBatch(static_cast<int>(c1 - c0), t_max,
                               valid_tokens);
    nn::Tensor padded = nn::PadExamples(prefixes);
    nn::Tensor out_batch = model_->LastLayerBatch(padded, schema_, lengths);
    for (size_t j = c0; j < c1; ++j) {
      tensors[slots[j]] = PoolReadOut(
          nn::SliceExample(out_batch, static_cast<int>(j - c0),
                           lengths[j - c0]),
          *entries[slots[j]]);
    }
  }
  model_->set_train(false);
  std::vector<StatusOr<nn::Tensor>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (tensors[i].defined()) {
      out.push_back(std::move(tensors[i]));
    } else {
      out.push_back(miss_status[static_cast<size_t>(miss_of[i])]);
    }
  }
  return out;
}

std::vector<nn::Tensor> PreqrEncoder::EncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  auto results = TryEncodeVectorBatch(sqls, train);
  std::vector<nn::Tensor> out;
  out.reserve(results.size());
  for (auto& r : results) {
    if (r.ok()) {
      out.push_back(std::move(r).value());
    } else {
      serving::RecordEncodeFallback(r.status().ToString());
      std::optional<nn::NoGradGuard> no_grad;
      std::optional<nn::quant::Int8Guard> int8;
      if (!train) {
        no_grad.emplace();
        if (use_int8_) int8.emplace(true);
      }
      model_->set_train(train);
      out.push_back(ReadOut(ZeroEntry()));
      model_->set_train(false);
    }
  }
  return out;
}

nn::Tensor PreqrEncoder::EncodeSequence(const std::string& sql, bool train) {
  std::optional<nn::NoGradGuard> no_grad;
  std::optional<nn::quant::Int8Guard> int8;
  if (!train) {
    no_grad.emplace();
    if (use_int8_) {
      int8.emplace(true);
      serving::RecordInt8Encode();
    }
  }
  model_->set_train(train);
  auto cached = Prefix(sql);
  if (!cached.ok()) serving::RecordEncodeFallback(cached.status().ToString());
  auto enc = model_->LastLayer(
      cached.ok() ? cached.value().prefix : ZeroEntry().prefix, schema_);
  model_->set_train(false);
  return enc.tokens;  // [S, d]
}

std::vector<nn::Tensor> PreqrEncoder::TrainableParameters() {
  return model_->LastLayerParameters();
}

}  // namespace preqr::tasks
