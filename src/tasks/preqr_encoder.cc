#include "tasks/preqr_encoder.h"

#include "automaton/symbol.h"
#include "common/thread_pool.h"
#include "nn/ops.h"

namespace preqr::tasks {

PreqrEncoder::PreqrEncoder(core::PreqrModel* model) : model_(model) {
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

void PreqrEncoder::BeginStep(bool /*train*/) {
  // The schema branch is below the fine-tuned layer boundary, so it stays
  // frozen; nothing to refresh.
}

void PreqrEncoder::InvalidateCache() {
  prefix_cache_.clear();
  if (model_->config().use_schema) {
    schema_ = model_->EncodeSchemaNodes(/*with_grad=*/false);
  }
}

const PreqrEncoder::CachedQuery& PreqrEncoder::Prefix(const std::string& sql) {
  auto it = prefix_cache_.find(sql);
  if (it != prefix_cache_.end()) return it->second;
  CachedQuery entry;
  if (!ComputeQuery(sql, &entry)) {
    // Malformed query: a single zero row keeps downstream shapes valid.
    empty_.prefix = nn::Tensor::Zeros({1, model_->config().d_model});
    empty_.predicate_spans.clear();
    empty_.table_rows.clear();
    return empty_;
  }
  return prefix_cache_.emplace(sql, std::move(entry)).first->second;
}

bool PreqrEncoder::ComputeQuery(const std::string& sql, CachedQuery* out) {
  auto tokenized = model_->tokenizer().Tokenize(sql);
  if (!tokenized.ok()) return false;
  CachedQuery& entry = *out;
  entry.predicate_spans.clear();
  entry.table_rows.clear();
  entry.prefix = model_->EncodePrefix(tokenized.value(), schema_);
  using automaton::Symbol;
  const int s = entry.prefix.dim(0);
  // Predicate spans: maximal runs of predicate-body symbols (a column, its
  // operator, and its literals / rhs column) inside the WHERE region.
  auto is_pred_symbol = [](Symbol sym) {
    switch (sym) {
      case Symbol::kColumn:
      case Symbol::kOpEq:
      case Symbol::kOpNe:
      case Symbol::kOpLt:
      case Symbol::kOpLe:
      case Symbol::kOpGt:
      case Symbol::kOpGe:
      case Symbol::kLike:
      case Symbol::kIn:
      case Symbol::kBetween:
      case Symbol::kNot:
      case Symbol::kValueNum:
      case Symbol::kValueStr:
      case Symbol::kLParen:
      case Symbol::kRParen:
        return true;
      default:
        return false;
    }
  };
  std::vector<int> current;
  const auto& symbols = tokenized.value().symbols;
  for (int i = 0; i < s && i < static_cast<int>(symbols.size()); ++i) {
    const Symbol sym = symbols[static_cast<size_t>(i)];
    if (is_pred_symbol(sym)) {
      current.push_back(i);
    } else {
      if (!current.empty()) entry.predicate_spans.push_back(current);
      current.clear();
      if (sym == Symbol::kTable) entry.table_rows.push_back(i);
    }
  }
  if (!current.empty()) entry.predicate_spans.push_back(current);
  return true;
}

nn::Tensor PreqrEncoder::EncodeVector(const std::string& sql, bool train) {
  model_->set_train(train);
  nn::Tensor v = ReadOut(Prefix(sql));
  model_->set_train(false);
  return v;
}

nn::Tensor PreqrEncoder::ReadOut(const CachedQuery& cached) {
  auto enc = model_->LastLayer(cached.prefix, schema_);
  // Structured read-out over the final token states: the aggregate [CLS],
  // the global mean, mean/max pools over per-predicate span means (set
  // pooling that keeps each predicate's column-op-value binding), and the
  // FROM-list pool. The automaton provides the span structure.
  const int d = model_->config().d_model;
  nn::Tensor mean = nn::Reshape(nn::MeanRows(enc.tokens), {1, d});
  nn::Tensor span_mean, span_max;
  if (cached.predicate_spans.empty()) {
    span_mean = nn::Tensor::Zeros({1, d});
    span_max = nn::Tensor::Zeros({1, d});
  } else {
    std::vector<nn::Tensor> spans;
    spans.reserve(cached.predicate_spans.size());
    for (const auto& rows : cached.predicate_spans) {
      spans.push_back(
          nn::Reshape(nn::MeanRowsSubset(enc.tokens, rows), {1, d}));
    }
    nn::Tensor stacked = nn::ConcatRows(spans);  // [P, d]
    // Sum pooling over spans: per-conjunct contributions add up, matching
    // the log-additive structure of join/filter cardinality factors.
    span_mean = nn::Scale(
        nn::Reshape(nn::MeanRows(stacked), {1, d}),
        static_cast<float>(cached.predicate_spans.size()));
    span_max = nn::Reshape(nn::MaxRows(stacked), {1, d});
  }
  nn::Tensor tabs = nn::Scale(
      nn::Reshape(nn::MeanRowsSubset(enc.tokens, cached.table_rows), {1, d}),
      static_cast<float>(cached.table_rows.size()));
  return nn::ConcatLastDim({enc.cls, mean, span_mean, span_max, tabs});
}

std::vector<nn::Tensor> PreqrEncoder::EncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  model_->set_train(train);
  // Pass 1: compute missing prefixes in parallel into per-query slots (the
  // cache itself is not touched from worker threads).
  std::vector<int> missing;
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (prefix_cache_.find(sqls[i]) == prefix_cache_.end()) {
      missing.push_back(static_cast<int>(i));
    }
  }
  std::vector<CachedQuery> computed(missing.size());
  std::vector<char> ok(missing.size(), 0);
  ParallelFor(0, static_cast<int64_t>(missing.size()), 1,
              [&](int64_t b0, int64_t b1) {
                for (int64_t m = b0; m < b1; ++m) {
                  ok[static_cast<size_t>(m)] = ComputeQuery(
                      sqls[static_cast<size_t>(
                          missing[static_cast<size_t>(m)])],
                      &computed[static_cast<size_t>(m)]);
                }
              });
  // Serial cache insertion in query order (duplicates collapse here).
  for (size_t m = 0; m < missing.size(); ++m) {
    if (!ok[m]) continue;
    prefix_cache_.emplace(sqls[static_cast<size_t>(missing[m])],
                          std::move(computed[m]));
  }
  // Pass 2: per-query read-outs in parallel — well-formed queries resolve
  // through the now read-only cache; each output slot is independent.
  std::vector<nn::Tensor> out(sqls.size());
  ParallelFor(0, static_cast<int64_t>(sqls.size()), 1,
              [&](int64_t b0, int64_t b1) {
                for (int64_t i = b0; i < b1; ++i) {
                  auto it = prefix_cache_.find(sqls[static_cast<size_t>(i)]);
                  if (it != prefix_cache_.end()) {
                    out[static_cast<size_t>(i)] = ReadOut(it->second);
                  }
                }
              });
  // Malformed queries share the zero-row fallback entry; handle serially.
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (!out[i].defined()) out[i] = ReadOut(Prefix(sqls[i]));
  }
  model_->set_train(false);
  return out;
}

nn::Tensor PreqrEncoder::EncodeSequence(const std::string& sql, bool train) {
  model_->set_train(train);
  auto enc = model_->LastLayer(Prefix(sql).prefix, schema_);
  model_->set_train(false);
  return enc.tokens;  // [S, d]
}

std::vector<nn::Tensor> PreqrEncoder::TrainableParameters() {
  return model_->LastLayerParameters();
}

}  // namespace preqr::tasks
