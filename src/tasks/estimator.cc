#include "tasks/estimator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "eval/metrics.h"
#include "nn/ops.h"

namespace preqr::tasks {

Mlp3::Mlp3(int in_dim, int hidden, Rng& rng)
    : fc1_(in_dim, hidden, rng),
      fc2_(hidden, hidden, rng),
      fc3_(hidden, 1, rng) {
  RegisterChild("fc1", &fc1_);
  RegisterChild("fc2", &fc2_);
  RegisterChild("fc3", &fc3_);
}

nn::Tensor Mlp3::Forward(const nn::Tensor& x) const {
  return fc3_.Forward(nn::Relu(fc2_.Forward(nn::Relu(fc1_.Forward(x)))));
}

EstimatorModel::EstimatorModel(baselines::QueryEncoder* encoder,
                               Options options)
    : encoder_(encoder), options_(options), rng_(options.seed) {
  head_ = std::make_unique<Mlp3>(encoder->dim(), options.hidden, rng_);
  encoder_static_ = encoder->TrainableParameters().empty();
  std::vector<nn::Tensor> params = head_->Parameters();
  for (const auto& t : encoder->TrainableParameters()) params.push_back(t);
  opt_ = std::make_unique<nn::Adam>(params, options.lr);
}

nn::Tensor EstimatorModel::Features(const std::string& sql, bool train) {
  if (encoder_static_) {
    auto f = TryFeatures(sql);
    // Unencodable SQL rides the encoder's fallback features, computed
    // outside the success-only cache.
    return f.ok() ? f.value() : encoder_->EncodeVector(sql, /*train=*/false);
  }
  return encoder_->EncodeVector(sql, train);
}

StatusOr<nn::Tensor> EstimatorModel::TryFeatures(const std::string& sql) {
  if (encoder_static_) {
    auto it = feature_cache_.find(sql);
    if (it != feature_cache_.end()) return it->second;
    auto f = encoder_->TryEncodeVector(sql, /*train=*/false);
    if (f.ok()) feature_cache_.emplace(sql, f.value());
    return f;
  }
  return encoder_->TryEncodeVector(sql, /*train=*/false);
}

double EstimatorModel::Fit(const std::vector<std::string>& sqls,
                           const std::vector<double>& targets) {
  FitWithValidation(sqls, targets, {}, {});
  return last_train_loss_;
}

std::vector<double> EstimatorModel::FitWithValidation(
    const std::vector<std::string>& train_sqls,
    const std::vector<double>& train_targets,
    const std::vector<std::string>& val_sqls,
    const std::vector<double>& val_targets) {
  PREQR_CHECK_EQ(train_sqls.size(), train_targets.size());
  std::vector<float> log_targets;
  log_targets.reserve(train_targets.size());
  float max_log = 0.0f;
  for (double t : train_targets) {
    log_targets.push_back(static_cast<float>(std::log1p(std::max(0.0, t))));
    max_log = std::max(max_log, log_targets.back());
  }
  if (!log_targets.empty()) max_log_target_ = max_log;
  std::vector<size_t> order(train_sqls.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> val_curve;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.NextUint64(i)]);
    }
    double loss_sum = 0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options_.batch_size));
      opt_->ZeroGrad();
      encoder_->BeginStep(/*train=*/true);
      nn::Tensor batch_loss;
      for (size_t bi = start; bi < end; ++bi) {
        const size_t qi = order[bi];
        nn::Tensor pred = head_->Forward(Features(train_sqls[qi], true));
        nn::Tensor loss = nn::MseLoss(pred, {log_targets[qi]});
        batch_loss = batch_loss.defined() ? nn::Add(batch_loss, loss) : loss;
      }
      batch_loss =
          nn::Scale(batch_loss, 1.0f / static_cast<float>(end - start));
      batch_loss.Backward();
      opt_->Step();
      loss_sum += batch_loss.item();
      ++batches;
    }
    last_train_loss_ = loss_sum / std::max(1, batches);
    if (options_.verbose) {
      std::fprintf(stderr, "[estimator %s] epoch %d loss=%.4f\n",
                   encoder_->name().c_str(), epoch, last_train_loss_);
    }
    if (!val_sqls.empty()) {
      auto preds = PredictAll(val_sqls);
      val_curve.push_back(eval::ComputeQErrors(val_targets, preds).mean);
    }
  }
  return val_curve;
}

// Predictions are clamped in log space to the training target range plus a
// margin: out-of-distribution extrapolation must not dominate the max/99th
// statistics.
double EstimatorModel::ClampedExpm1(float log_pred) const {
  return std::expm1(std::clamp(static_cast<double>(log_pred), 0.0,
                               static_cast<double>(max_log_target_) + 2.0));
}

double EstimatorModel::Predict(const std::string& sql) {
  encoder_->BeginStep(/*train=*/false);
  auto features = TryFeatures(sql);
  if (!features.ok()) {
    ++predict_fallback_total_;
    return ClampedExpm1(
        head_->Forward(encoder_->EncodeVector(sql, /*train=*/false)).item());
  }
  return ClampedExpm1(head_->Forward(features.value()).item());
}

StatusOr<double> EstimatorModel::TryPredict(const std::string& sql) {
  encoder_->BeginStep(/*train=*/false);
  auto features = TryFeatures(sql);
  if (!features.ok()) return features.status();
  return ClampedExpm1(head_->Forward(features.value()).item());
}

std::vector<double> EstimatorModel::PredictAll(
    const std::vector<std::string>& sqls) {
  encoder_->BeginStep(/*train=*/false);
  std::vector<double> out;
  out.reserve(sqls.size());
  if (encoder_static_) {
    // Static featurizers keep the per-query feature memo shared with Fit.
    for (const auto& sql : sqls) {
      nn::Tensor pred = head_->Forward(Features(sql, false));
      out.push_back(ClampedExpm1(pred.item()));
    }
    return out;
  }
  // Trainable encoders go through the batched base-interface entry point
  // (PreQR computes missing frozen prefixes across the thread pool; other
  // encoders fall back to the serial default).
  auto features = encoder_->EncodeVectorBatch(sqls, /*train=*/false);
  for (const auto& f : features) {
    out.push_back(ClampedExpm1(head_->Forward(f).item()));
  }
  return out;
}

}  // namespace preqr::tasks
