#include "tasks/clustering.h"

#include "baselines/sim.h"
#include "sql/parser.h"

namespace preqr::tasks {

std::vector<sql::SelectStatement> ParseAll(
    const std::vector<std::string>& queries) {
  std::vector<sql::SelectStatement> out;
  out.reserve(queries.size());
  for (const auto& q : queries) {
    auto parsed = sql::Parse(q);
    out.push_back(parsed.ok() ? std::move(parsed.value())
                              : sql::SelectStatement());
  }
  return out;
}

std::vector<std::vector<double>> AstDistanceMatrix(
    const std::vector<sql::SelectStatement>& stmts, AstMetric metric) {
  const size_t n = stmts.size();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double dist = 0;
      switch (metric) {
        case AstMetric::kAouiche:
          dist = baselines::AouicheDistance(stmts[i], stmts[j]);
          break;
        case AstMetric::kAligon:
          dist = baselines::AligonDistance(stmts[i], stmts[j]);
          break;
        case AstMetric::kMakiyama:
          dist = baselines::MakiyamaDistance(stmts[i], stmts[j]);
          break;
      }
      d[i][j] = dist;
      d[j][i] = dist;
    }
  }
  return d;
}

std::vector<std::vector<double>> EmbeddingDistanceMatrix(
    const std::vector<std::string>& queries,
    baselines::QueryEncoder& encoder) {
  const size_t n = queries.size();
  // One batched call through the base interface: every encoder shares the
  // call shape, and PreQR parallelizes the missing-prefix computation.
  std::vector<std::vector<float>> embeddings;
  embeddings.reserve(n);
  for (auto& e : encoder.EncodeVectorBatch(queries, /*train=*/false)) {
    embeddings.emplace_back(e.vec());
  }
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dist =
          baselines::CosineDistance(embeddings[i], embeddings[j]);
      d[i][j] = dist;
      d[j][i] = dist;
    }
  }
  return d;
}

std::vector<std::vector<double>> ToSimilarity(
    const std::vector<std::vector<double>>& distance) {
  std::vector<std::vector<double>> s(distance.size());
  for (size_t i = 0; i < distance.size(); ++i) {
    s[i].reserve(distance[i].size());
    for (double d : distance[i]) s[i].push_back(1.0 - d);
  }
  return s;
}

}  // namespace preqr::tasks
