#include "tasks/correction.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/ops.h"

namespace preqr::tasks {

CorrectionModel::CorrectionModel(baselines::QueryEncoder* encoder,
                                 EstimatorModel::Options options)
    : encoder_(encoder), options_(options), rng_(options.seed) {
  head_ = std::make_unique<Mlp3>(encoder->dim(), options.hidden, rng_);
  std::vector<nn::Tensor> params = head_->Parameters();
  for (const auto& t : encoder->TrainableParameters()) params.push_back(t);
  opt_ = std::make_unique<nn::Adam>(params, options.lr);
}

void CorrectionModel::Fit(const std::vector<std::string>& sqls,
                          const std::vector<double>& base_estimates,
                          const std::vector<double>& truths) {
  PREQR_CHECK_EQ(sqls.size(), base_estimates.size());
  PREQR_CHECK_EQ(sqls.size(), truths.size());
  std::vector<float> targets;
  targets.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    const double ratio =
        std::max(1.0, truths[i]) / std::max(1.0, base_estimates[i]);
    // Clamp extreme residuals so single outliers do not dominate.
    targets.push_back(static_cast<float>(
        std::clamp(std::log(ratio), -8.0, 8.0)));
  }
  std::vector<size_t> order(sqls.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.NextUint64(i)]);
    }
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options_.batch_size));
      opt_->ZeroGrad();
      encoder_->BeginStep(/*train=*/true);
      nn::Tensor batch_loss;
      for (size_t bi = start; bi < end; ++bi) {
        const size_t qi = order[bi];
        nn::Tensor pred =
            head_->Forward(encoder_->EncodeVector(sqls[qi], true));
        nn::Tensor loss = nn::MseLoss(pred, {targets[qi]});
        batch_loss = batch_loss.defined() ? nn::Add(batch_loss, loss) : loss;
      }
      batch_loss =
          nn::Scale(batch_loss, 1.0f / static_cast<float>(end - start));
      batch_loss.Backward();
      opt_->Step();
    }
  }
}

double CorrectionModel::Correct(const std::string& sql,
                                double base_estimate) {
  encoder_->BeginStep(/*train=*/false);
  nn::Tensor pred = head_->Forward(encoder_->EncodeVector(sql, false));
  const double factor = std::exp(std::clamp(
      static_cast<double>(pred.item()), -8.0, 8.0));
  return std::max(1.0, base_estimate * factor);
}

}  // namespace preqr::tasks
