#ifndef PREQR_TASKS_CORRECTION_H_
#define PREQR_TASKS_CORRECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "nn/optim.h"
#include "tasks/estimator.h"

namespace preqr::tasks {

// Error-correction model for data-driven estimators (the NeuroCard+PreQR
// row of Table 8): "our prediction model is used to learn the gap between
// NeuroCard's results and their ground truths". Trains an MLP over the
// query encoding to predict log(truth / base_estimate); the corrected
// estimate is base * exp(prediction).
class CorrectionModel {
 public:
  CorrectionModel(baselines::QueryEncoder* encoder,
                  EstimatorModel::Options options);

  void Fit(const std::vector<std::string>& sqls,
           const std::vector<double>& base_estimates,
           const std::vector<double>& truths);

  double Correct(const std::string& sql, double base_estimate);

 private:
  baselines::QueryEncoder* encoder_;
  EstimatorModel::Options options_;
  Rng rng_;
  std::unique_ptr<Mlp3> head_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_CORRECTION_H_
