#ifndef PREQR_TASKS_SQL2TEXT_H_
#define PREQR_TASKS_SQL2TEXT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "common/rng.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "workload/sql2text.h"

namespace preqr::tasks {

// Word vocabulary for the natural-language side.
class TextVocab {
 public:
  static constexpr int kUnk = 0;
  static constexpr int kBos = 1;
  static constexpr int kEos = 2;

  TextVocab();
  void Build(const std::vector<workload::TextPair>& pairs);
  int Id(const std::string& word) const;
  const std::string& Word(int id) const {
    return words_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(words_.size()); }

 private:
  std::vector<std::string> words_;
  std::map<std::string, int> index_;
};

// GRU decoder with Luong-style attention over the encoder memory.
class TextDecoder : public nn::Module {
 public:
  TextDecoder(int vocab_size, int dim, int enc_dim, Rng& rng);

  // Teacher-forcing loss over one (memory, target) pair.
  nn::Tensor TrainLoss(const nn::Tensor& memory,
                       const std::vector<int>& target_ids) const;
  // Greedy decoding (stops at EOS or max_len).
  std::vector<int> Generate(const nn::Tensor& memory, int max_len) const;

 private:
  // One step: consumes prev token id and state; returns (logits, new state).
  std::pair<nn::Tensor, nn::Tensor> Step(const nn::Tensor& memory_proj,
                                         int prev_id,
                                         const nn::Tensor& state) const;
  int dim_;
  nn::Embedding embedding_;
  nn::Linear memory_proj_;
  nn::GruCell gru_;
  nn::Linear attn_combine_;  // [h ; context] -> dim
  nn::Linear out_;           // dim -> vocab
};

// End-to-end SQL-to-Text model: any SequenceEncoder + the attention decoder.
// Replaces only the encoder across baselines, as in Section 4.6.
class Sql2TextModel {
 public:
  struct Options {
    int dim = 48;
    int epochs = 6;
    float lr = 2e-3f;
    int max_len = 24;
    uint64_t seed = 77;
    bool verbose = false;
  };

  Sql2TextModel(baselines::SequenceEncoder* encoder, Options options);

  void Fit(const std::vector<workload::TextPair>& train_pairs);
  double EvalBleu(const std::vector<workload::TextPair>& eval_pairs);
  std::vector<std::string> Generate(const std::string& sql);

 private:
  baselines::SequenceEncoder* encoder_;
  Options options_;
  Rng rng_;
  TextVocab vocab_;
  std::unique_ptr<TextDecoder> decoder_;
  std::unique_ptr<nn::Adam> opt_;
};

}  // namespace preqr::tasks

#endif  // PREQR_TASKS_SQL2TEXT_H_
