#ifndef PREQR_NEUROCARD_NEUROCARD_H_
#define PREQR_NEUROCARD_NEUROCARD_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "sql/ast.h"

namespace preqr::neurocard {

// Data-driven join-cardinality estimator standing in for NeuroCard
// (Yang et al., VLDB'21). NeuroCard learns a density over the full outer
// join of the database and answers queries with progressive sampling; our
// substitute materializes a *correlated sample of the join universe*
// (sampled root rows with all their satellite matches) and estimates by
// scaled counting over that sample. It shares NeuroCard's defining traits:
// query-independent (trained on data, not workloads), captures cross-table
// correlation exactly within the sample, and degrades on highly selective
// predicates / unseen regions where the sample is thin (the paper's Scale
// and Synthetic weaknesses).
class NeuroCard {
 public:
  // Samples `sample_size` rows of `root_table` (the join-universe root,
  // `title` for IMDB) together with their satellite fan-out.
  NeuroCard(const db::Database& db, const std::string& root_table,
            int sample_size, uint64_t seed = 17);

  // Estimates the cardinality of a tree-join COUNT query rooted at the
  // root table (or a single-table query on any table, handled by uniform
  // row sampling).
  Result<double> EstimateCardinality(const sql::SelectStatement& stmt) const;

  int sample_size() const { return sample_size_; }

 private:
  const db::Database& db_;
  std::string root_;
  int sample_size_;
  std::vector<int> root_rows_;  // sampled root row ids
  // For each table with an FK to root: per sampled root row, the matching
  // row ids. Key: table name -> [sample index][matching rows].
  std::map<std::string, std::vector<std::vector<int>>> fanout_;
};

}  // namespace preqr::neurocard

#endif  // PREQR_NEUROCARD_NEUROCARD_H_
