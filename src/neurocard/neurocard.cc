#include "neurocard/neurocard.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "db/executor.h"

namespace preqr::neurocard {

namespace {
using sql::ColumnRef;
using sql::Predicate;
using sql::SelectStatement;

// Resolves a binding name to its table within the statement.
std::string TableOf(const SelectStatement& stmt, const std::string& binding) {
  return stmt.ResolveTable(binding);
}
}  // namespace

NeuroCard::NeuroCard(const db::Database& db, const std::string& root_table,
                     int sample_size, uint64_t seed)
    : db_(db), root_(root_table), sample_size_(sample_size) {
  const db::Table* root = db.FindTable(root_table);
  PREQR_CHECK(root != nullptr);
  Rng rng(seed);
  const size_t n = root->num_rows();
  std::unordered_set<int> chosen;
  while (static_cast<int>(chosen.size()) <
             std::min<int>(sample_size_, static_cast<int>(n)) &&
         n > 0) {
    chosen.insert(static_cast<int>(rng.NextUint64(n)));
  }
  root_rows_.assign(chosen.begin(), chosen.end());
  std::sort(root_rows_.begin(), root_rows_.end());

  // root id value -> sample slot.
  const int pk = root->def().PrimaryKeyIndex();
  std::unordered_map<int64_t, int> slot;
  for (size_t s = 0; s < root_rows_.size(); ++s) {
    slot[root->column(pk).ints[static_cast<size_t>(root_rows_[s])]] =
        static_cast<int>(s);
  }

  // Materialize satellite fan-out for every table with an FK to the root.
  for (const auto& fk : db.catalog().foreign_keys()) {
    if (fk.to_table != root_table) continue;
    const db::Table* sat = db.FindTable(fk.from_table);
    if (sat == nullptr) continue;
    auto& lists = fanout_[fk.from_table];
    if (lists.empty()) lists.resize(root_rows_.size());
    const int fk_col = sat->def().ColumnIndex(fk.from_column);
    const auto& vals = sat->column(fk_col).ints;
    for (size_t r = 0; r < vals.size(); ++r) {
      auto it = slot.find(vals[r]);
      if (it != slot.end()) {
        lists[static_cast<size_t>(it->second)].push_back(static_cast<int>(r));
      }
    }
  }
}

Result<double> NeuroCard::EstimateCardinality(
    const SelectStatement& stmt) const {
  // Collect per-binding filters (predicates with literals).
  struct Bind {
    std::string table;
    const db::Table* tab = nullptr;
    std::vector<std::pair<int, const Predicate*>> filters;  // (col, pred)
  };
  std::vector<Bind> binds;
  for (const auto& tref : stmt.tables) {
    Bind b;
    b.table = tref.table;
    b.tab = db_.FindTable(tref.table);
    if (b.tab == nullptr) return Status::NotFound("unknown table");
    binds.push_back(b);
  }
  auto bind_of = [&](const ColumnRef& ref) -> int {
    const std::string table = TableOf(stmt, ref.qualifier.empty()
                                                ? ref.column
                                                : ref.qualifier);
    if (!ref.qualifier.empty()) {
      for (size_t i = 0; i < binds.size(); ++i) {
        if (binds[i].table == table) return static_cast<int>(i);
      }
      return -1;
    }
    for (size_t i = 0; i < binds.size(); ++i) {
      if (binds[i].tab->def().ColumnIndex(ref.column) >= 0) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  struct Join {
    int a, b;
    int col_a, col_b;
  };
  std::vector<Join> joins;
  for (const auto& pred : stmt.predicates) {
    if (pred.subquery) {
      return Status::InvalidArgument("NeuroCard: subqueries unsupported");
    }
    if (pred.IsJoin()) {
      Join j;
      j.a = bind_of(pred.lhs);
      j.b = bind_of(pred.rhs_column);
      if (j.a < 0 || j.b < 0) return Status::NotFound("join column");
      j.col_a = binds[static_cast<size_t>(j.a)].tab->def().ColumnIndex(
          pred.lhs.column);
      j.col_b = binds[static_cast<size_t>(j.b)].tab->def().ColumnIndex(
          pred.rhs_column.column);
      joins.push_back(j);
    } else {
      const int b = bind_of(pred.lhs);
      if (b < 0) return Status::NotFound("filter column");
      const int col = binds[static_cast<size_t>(b)].tab->def().ColumnIndex(
          pred.lhs.column);
      binds[static_cast<size_t>(b)].filters.emplace_back(col, &pred);
    }
  }

  auto row_passes = [&](const Bind& b, size_t row) {
    for (const auto& [col, pred] : b.filters) {
      if (!db::PredicatePasses(*b.tab, col, *pred, row)) return false;
    }
    return true;
  };

  // Single-table query: uniform sampling over that table.
  if (binds.size() == 1) {
    const Bind& b = binds[0];
    Rng rng(31);
    const size_t n = b.tab->num_rows();
    const int s = std::min<int>(sample_size_ * 4, static_cast<int>(n));
    if (n == 0) return 1.0;
    int pass = 0;
    for (int i = 0; i < s; ++i) {
      if (row_passes(b, rng.NextUint64(n))) ++pass;
    }
    return std::max(1.0, static_cast<double>(pass) / s *
                             static_cast<double>(n));
  }

  // Join queries must be rooted at the sampled root table (binding 0).
  if (binds[0].table != root_) {
    return Status::InvalidArgument("join query not rooted at " + root_);
  }
  const db::Table* root = binds[0].tab;

  // Identify, per level-1 satellite binding, the level-2 dimension lookups
  // hanging off it (dim joined by its PK => multiplicity <= 1).
  struct DimLookup {
    int sat_col;           // FK column on the satellite
    const Bind* dim;       // dimension binding
    int dim_pk;            // PK column of the dimension
  };
  struct SatNode {
    const Bind* bind;
    const std::vector<std::vector<int>>* lists;
    std::vector<DimLookup> dims;
  };
  std::vector<SatNode> sats;
  std::vector<DimLookup> root_dims;  // dimensions joined directly to root
  std::vector<char> used(binds.size(), 0);
  used[0] = 1;
  // Level 1: joins touching binding 0 through the FK universe we sampled.
  for (const auto& j : joins) {
    const int other = j.a == 0 ? j.b : (j.b == 0 ? j.a : -1);
    if (other < 0) continue;
    const Bind& ob = binds[static_cast<size_t>(other)];
    auto it = fanout_.find(ob.table);
    if (it != fanout_.end()) {
      SatNode node;
      node.bind = &ob;
      node.lists = &it->second;
      sats.push_back(node);
      used[static_cast<size_t>(other)] = 1;
    } else {
      // Dimension of the root (e.g. kind_type): root.col -> dim.pk.
      DimLookup dl;
      dl.sat_col = j.a == 0 ? j.col_a : j.col_b;
      dl.dim = &ob;
      dl.dim_pk = ob.tab->def().PrimaryKeyIndex();
      root_dims.push_back(dl);
      used[static_cast<size_t>(other)] = 1;
    }
  }
  // Level 2: joins between a used satellite and an unused dimension.
  for (const auto& j : joins) {
    if (j.a == 0 || j.b == 0) continue;
    int sat_idx = -1, dim_idx = -1, sat_col = -1;
    if (used[static_cast<size_t>(j.a)] && !used[static_cast<size_t>(j.b)]) {
      sat_idx = j.a;
      dim_idx = j.b;
      sat_col = j.col_a;
    } else if (used[static_cast<size_t>(j.b)] &&
               !used[static_cast<size_t>(j.a)]) {
      sat_idx = j.b;
      dim_idx = j.a;
      sat_col = j.col_b;
    } else {
      return Status::InvalidArgument("NeuroCard: join shape unsupported");
    }
    const Bind& sat = binds[static_cast<size_t>(sat_idx)];
    const Bind& dim = binds[static_cast<size_t>(dim_idx)];
    DimLookup dl;
    dl.sat_col = sat_col;
    dl.dim = &dim;
    dl.dim_pk = dim.tab->def().PrimaryKeyIndex();
    for (auto& node : sats) {
      if (node.bind == &sat) node.dims.push_back(dl);
    }
    used[static_cast<size_t>(dim_idx)] = 1;
  }
  for (char u : used) {
    if (u == 0) {
      return Status::InvalidArgument("NeuroCard: disconnected join");
    }
  }

  // A dimension lookup passes if the dim row keyed by `value` satisfies the
  // dim's filters. Dimension PKs are dense 0..n-1 in our data, but we look
  // up defensively.
  auto dim_passes = [&](const DimLookup& dl, int64_t key) {
    const auto& pk_col = dl.dim->tab->column(dl.dim_pk).ints;
    size_t row = static_cast<size_t>(key);
    if (row >= pk_col.size() || pk_col[row] != key) {
      // Fallback: linear scan (never hit with dense ids).
      bool found = false;
      for (size_t r = 0; r < pk_col.size(); ++r) {
        if (pk_col[r] == key) {
          row = r;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return row_passes(*dl.dim, row);
  };

  double total = 0;
  for (size_t s = 0; s < root_rows_.size(); ++s) {
    const size_t root_row = static_cast<size_t>(root_rows_[s]);
    if (!row_passes(binds[0], root_row)) continue;
    bool ok = true;
    for (const auto& dl : root_dims) {
      const int64_t key = root->column(dl.sat_col).ints[root_row];
      if (!dim_passes(dl, key)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    double w = 1.0;
    for (const auto& node : sats) {
      double count = 0;
      for (int r : (*node.lists)[s]) {
        if (!row_passes(*node.bind, static_cast<size_t>(r))) continue;
        bool dim_ok = true;
        for (const auto& dl : node.dims) {
          const int64_t key =
              node.bind->tab->column(dl.sat_col).ints[static_cast<size_t>(r)];
          if (!dim_passes(dl, key)) {
            dim_ok = false;
            break;
          }
        }
        if (dim_ok) count += 1;
      }
      w *= count;
      if (w == 0) break;
    }
    total += w;
  }
  const double scale = static_cast<double>(root->num_rows()) /
                       static_cast<double>(root_rows_.size());
  return std::max(1.0, total * scale);
}

}  // namespace preqr::neurocard
