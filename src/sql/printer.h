#ifndef PREQR_SQL_PRINTER_H_
#define PREQR_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace preqr::sql {

// Renders the AST back to canonical SQL text (round-trips with Parse).
std::string ToSql(const SelectStatement& stmt);

}  // namespace preqr::sql

#endif  // PREQR_SQL_PRINTER_H_
