#include "sql/parser.h"

#include <memory>
#include <utility>
#include <vector>

#include "sql/lexer.h"

namespace preqr::sql {

namespace {

// Hard cap on SELECT nesting (IN-subqueries and UNION chains both recurse
// through ParseSelect). Recursion deeper than this is hostile input, not a
// workload: without the cap a mutated query with thousands of nested
// `IN (SELECT` tokens overflows the stack instead of returning a Status
// (found by the sql_fuzz harness).
constexpr int kMaxSelectDepth = 64;

// int64 range as doubles: the lexer stores literal values as doubles, and
// casting an out-of-range double to int64_t is undefined behavior. 2^63 is
// exactly representable; the valid range is [-2^63, 2^63).
constexpr double kInt64Lo = -9223372036854775808.0;
constexpr double kInt64Hi = 9223372036854775808.0;

// Recursive-descent parser over a token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    auto stmt = ParseSelect();
    if (!stmt.ok()) return stmt.status();
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("trailing tokens after statement: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (near token #" + std::to_string(pos_) +
                              ")");
  }

  Result<SelectStatement> ParseSelect() {
    if (depth_ >= kMaxSelectDepth) {
      return Err("SELECT nesting exceeds depth limit " +
                 std::to_string(kMaxSelectDepth));
    }
    ++depth_;
    auto stmt = ParseSelectImpl();
    --depth_;
    return stmt;
  }

  Result<SelectStatement> ParseSelectImpl() {
    SelectStatement stmt;
    if (!AcceptKeyword("SELECT")) return Err("expected SELECT");
    AcceptKeyword("DISTINCT");  // accepted and normalized away
    // Select list.
    while (true) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.status();
      stmt.items.push_back(std::move(item.value()));
      if (!AcceptSymbol(",")) break;
    }
    if (!AcceptKeyword("FROM")) return Err("expected FROM");
    // Table list with implicit-join commas and explicit JOIN ... ON.
    {
      auto table = ParseTableRef();
      if (!table.ok()) return table.status();
      stmt.tables.push_back(std::move(table.value()));
    }
    while (true) {
      if (AcceptSymbol(",")) {
        auto table = ParseTableRef();
        if (!table.ok()) return table.status();
        stmt.tables.push_back(std::move(table.value()));
        continue;
      }
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER") ||
          Peek().IsKeyword("LEFT") || Peek().IsKeyword("RIGHT")) {
        AcceptKeyword("INNER");
        AcceptKeyword("LEFT");
        AcceptKeyword("RIGHT");
        if (!AcceptKeyword("JOIN")) return Err("expected JOIN");
        auto table = ParseTableRef();
        if (!table.ok()) return table.status();
        stmt.tables.push_back(std::move(table.value()));
        if (!AcceptKeyword("ON")) return Err("expected ON");
        auto pred = ParsePredicate();
        if (!pred.ok()) return pred.status();
        stmt.predicates.push_back(std::move(pred.value()));
        continue;
      }
      break;
    }
    if (AcceptKeyword("WHERE")) {
      while (true) {
        auto pred = ParsePredicate();
        if (!pred.ok()) return pred.status();
        stmt.predicates.push_back(std::move(pred.value()));
        if (!AcceptKeyword("AND")) break;
      }
    }
    if (AcceptKeyword("GROUP")) {
      if (!AcceptKeyword("BY")) return Err("expected BY after GROUP");
      while (true) {
        auto col = ParseColumnRef();
        if (!col.ok()) return col.status();
        stmt.group_by.push_back(std::move(col.value()));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("ORDER")) {
      if (!AcceptKeyword("BY")) return Err("expected BY after ORDER");
      while (true) {
        auto col = ParseColumnRef();
        if (!col.ok()) return col.status();
        bool asc = true;
        if (AcceptKeyword("DESC")) asc = false;
        else AcceptKeyword("ASC");
        stmt.order_by.emplace_back(std::move(col.value()), asc);
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) return Err("expected limit count");
      const Token& count = Advance();
      if (!(count.number >= kInt64Lo && count.number < kInt64Hi)) {
        return Err("limit count out of int64 range: '" + count.text + "'");
      }
      stmt.limit = static_cast<int64_t>(count.number);
    }
    if (AcceptKeyword("UNION")) {
      auto next = ParseSelect();
      if (!next.ok()) return next.status();
      stmt.union_next =
          std::make_shared<SelectStatement>(std::move(next.value()));
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    const Token& t = Peek();
    auto agg_from_keyword = [](const std::string& kw) {
      if (kw == "COUNT") return AggFunc::kCount;
      if (kw == "SUM") return AggFunc::kSum;
      if (kw == "AVG") return AggFunc::kAvg;
      if (kw == "MIN") return AggFunc::kMin;
      if (kw == "MAX") return AggFunc::kMax;
      return AggFunc::kNone;
    };
    if (t.type == TokenType::kKeyword &&
        agg_from_keyword(t.text) != AggFunc::kNone) {
      item.agg = agg_from_keyword(Advance().text);
      if (!AcceptSymbol("(")) return Err("expected ( after aggregate");
      if (AcceptSymbol("*")) {
        item.star = true;
      } else {
        auto col = ParseColumnRef();
        if (!col.ok()) return col.status();
        item.column = std::move(col.value());
      }
      if (!AcceptSymbol(")")) return Err("expected ) after aggregate");
      return item;
    }
    if (AcceptSymbol("*")) {
      item.star = true;
      return item;
    }
    auto col = ParseColumnRef();
    if (!col.ok()) return col.status();
    item.column = std::move(col.value());
    return item;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier) return Err("expected table name");
    TableRef ref;
    ref.table = Advance().text;
    AcceptKeyword("AS");
    if (Peek().type == TokenType::kIdentifier) ref.alias = Advance().text;
    return ref;
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected column name, got '" + Peek().text + "'");
    }
    ColumnRef ref;
    ref.column = Advance().text;
    if (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected column after '.'");
      }
      ref.qualifier = std::move(ref.column);
      ref.column = Advance().text;
    }
    return ref;
  }

  Result<Literal> ParseLiteral() {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      const Token& tok = Advance();
      if (!tok.is_integer) return Literal::Float(tok.number);
      if (!(tok.number >= kInt64Lo && tok.number < kInt64Hi)) {
        return Err("integer literal out of int64 range: '" + tok.text + "'");
      }
      return Literal::Int(static_cast<int64_t>(tok.number));
    }
    if (t.type == TokenType::kString) {
      return Literal::String(Advance().text);
    }
    return Err("expected literal, got '" + t.text + "'");
  }

  Result<Predicate> ParsePredicate() {
    Predicate pred;
    auto lhs = ParseColumnRef();
    if (!lhs.ok()) return lhs.status();
    pred.lhs = std::move(lhs.value());

    if (AcceptKeyword("NOT")) {
      // Only `NOT IN` / `NOT LIKE` appear in our workloads; treated as the
      // positive form for representation purposes (the encoder sees the
      // token stream, the executor supports only the positive forms).
      // Fall through to operator parsing.
    }
    if (AcceptKeyword("BETWEEN")) {
      pred.op = CompareOp::kBetween;
      auto lo = ParseLiteral();
      if (!lo.ok()) return lo.status();
      if (!AcceptKeyword("AND")) return Err("expected AND in BETWEEN");
      auto hi = ParseLiteral();
      if (!hi.ok()) return hi.status();
      pred.values.push_back(std::move(lo.value()));
      pred.values.push_back(std::move(hi.value()));
      return pred;
    }
    if (AcceptKeyword("LIKE")) {
      pred.op = CompareOp::kLike;
      auto v = ParseLiteral();
      if (!v.ok()) return v.status();
      pred.values.push_back(std::move(v.value()));
      return pred;
    }
    if (AcceptKeyword("IN")) {
      pred.op = CompareOp::kIn;
      if (!AcceptSymbol("(")) return Err("expected ( after IN");
      if (Peek().IsKeyword("SELECT")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        pred.subquery =
            std::make_shared<SelectStatement>(std::move(sub.value()));
      } else {
        while (true) {
          auto v = ParseLiteral();
          if (!v.ok()) return v.status();
          pred.values.push_back(std::move(v.value()));
          if (!AcceptSymbol(",")) break;
        }
      }
      if (!AcceptSymbol(")")) return Err("expected ) after IN list");
      return pred;
    }
    // Comparison operator.
    const Token& op = Peek();
    if (op.type != TokenType::kSymbol) {
      return Err("expected comparison operator, got '" + op.text + "'");
    }
    if (op.text == "=") pred.op = CompareOp::kEq;
    else if (op.text == "<>") pred.op = CompareOp::kNe;
    else if (op.text == "<") pred.op = CompareOp::kLt;
    else if (op.text == "<=") pred.op = CompareOp::kLe;
    else if (op.text == ">") pred.op = CompareOp::kGt;
    else if (op.text == ">=") pred.op = CompareOp::kGe;
    else return Err("unknown operator '" + op.text + "'");
    Advance();
    // Column-column (join) or column-literal?
    if (Peek().type == TokenType::kIdentifier) {
      auto rhs = ParseColumnRef();
      if (!rhs.ok()) return rhs.status();
      pred.rhs_is_column = true;
      pred.rhs_column = std::move(rhs.value());
      return pred;
    }
    auto v = ParseLiteral();
    if (!v.ok()) return v.status();
    pred.values.push_back(std::move(v.value()));
    return pred;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  // current ParseSelect recursion depth
};

}  // namespace

Result<SelectStatement> Parse(const std::string& sql) {
  auto tokens = Lex(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.ParseStatement();
}

}  // namespace preqr::sql
