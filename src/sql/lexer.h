#ifndef PREQR_SQL_LEXER_H_
#define PREQR_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace preqr::sql {

enum class TokenType {
  kKeyword,     // SELECT, FROM, ... (upper-cased canonical text)
  kIdentifier,  // table / column / alias names (lower-cased)
  kNumber,      // integer or float literal
  kString,      // 'quoted' string literal (text without quotes)
  kSymbol,      // punctuation and operators: ( ) , . = <> <= >= < > * ;
  kEnd,         // end of input
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // canonical text (see above)
  double number = 0;   // valid when type == kNumber
  bool is_integer = false;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

// Tokenizes a SQL string. Keywords are recognized case-insensitively.
// Returns a trailing kEnd token on success.
Result<std::vector<Token>> Lex(const std::string& sql);

// True if `word` (upper-cased) is a recognized SQL keyword.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace preqr::sql

#endif  // PREQR_SQL_LEXER_H_
