#include "sql/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>

namespace preqr::sql {

namespace {
constexpr std::array<const char*, 31> kKeywords = {
    "SELECT", "FROM",  "WHERE",   "AND",   "OR",    "NOT",   "IN",
    "BETWEEN", "LIKE", "UNION",   "GROUP", "BY",    "ORDER", "HAVING",
    "AS",      "JOIN", "ON",      "INNER", "LEFT",  "RIGHT", "COUNT",
    "SUM",     "AVG",  "MIN",     "MAX",   "DISTINCT", "LIMIT", "ASC",
    "DESC",    "IS",   "NULL",
};
}  // namespace

bool IsSqlKeyword(const std::string& upper_word) {
  return std::find_if(kKeywords.begin(), kKeywords.end(),
                      [&](const char* kw) { return upper_word == kw; }) !=
         kKeywords.end();
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      Token t;
      if (IsSqlKeyword(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        std::transform(word.begin(), word.end(), word.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        t.text = word;
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])) &&
         (tokens.empty() || tokens.back().type == TokenType::kSymbol ||
          tokens.back().type == TokenType::kKeyword))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') {
          if (j + 1 < n &&
              !std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
            break;  // qualified-name dot, not a decimal point
          }
          is_float = true;
        }
        ++j;
      }
      Token t;
      t.type = TokenType::kNumber;
      t.text = sql.substr(i, j - i);
      t.number = std::strtod(t.text.c_str(), nullptr);
      t.is_integer = !is_float;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      while (j < n && sql[j] != '\'') {
        value.push_back(sql[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      Token t;
      t.type = TokenType::kString;
      t.text = std::move(value);
      tokens.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      const std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        Token t;
        t.type = TokenType::kSymbol;
        t.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    if (std::string("(),.*=<>;").find(c) != std::string::npos) {
      Token t;
      t.type = TokenType::kSymbol;
      t.text = std::string(1, c);
      tokens.push_back(std::move(t));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace preqr::sql
