#ifndef PREQR_SQL_AST_H_
#define PREQR_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace preqr::sql {

// A (possibly alias-qualified) column reference, e.g. `t.production_year`.
struct ColumnRef {
  std::string qualifier;  // table name or alias; may be empty
  std::string column;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.qualifier == b.qualifier && a.column == b.column;
  }
};

enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

// One item of the SELECT list: `COUNT(*)`, `SUM(a.balance)`, `t.id`, `*`.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  bool star = false;  // `*` (possibly inside an aggregate)
  ColumnRef column;   // valid when !star
};

struct TableRef {
  std::string table;
  std::string alias;  // empty when not aliased

  std::string BindingName() const { return alias.empty() ? table : alias; }
};

enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kIn,       // IN (value list) or IN (subquery)
  kBetween,  // BETWEEN v1 AND v2
};

const char* CompareOpSymbol(CompareOp op);

struct Literal {
  enum class Kind { kInt, kFloat, kString };
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;

  static Literal Int(int64_t v);
  static Literal Float(double v);
  static Literal String(std::string v);
  double AsDouble() const {
    return kind == Kind::kFloat ? float_value
                                : static_cast<double>(int_value);
  }
  std::string ToString() const;
  friend bool operator==(const Literal& a, const Literal& b);
};

struct SelectStatement;

// One conjunct of the WHERE clause. Either a join predicate
// (`lhs op rhs_column`), a filter against literals, or an IN-subquery.
struct Predicate {
  ColumnRef lhs;
  CompareOp op = CompareOp::kEq;
  bool rhs_is_column = false;
  ColumnRef rhs_column;             // valid when rhs_is_column
  std::vector<Literal> values;      // 1 (compare/LIKE), 2 (BETWEEN), n (IN)
  std::shared_ptr<SelectStatement> subquery;  // IN (SELECT ...)

  bool IsJoin() const { return rhs_is_column; }
};

// A SELECT statement with conjunctive WHERE. UNION chains link through
// `union_next`. shared_ptr keeps the AST copyable.
struct SelectStatement {
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  std::vector<Predicate> predicates;  // ANDed
  std::vector<ColumnRef> group_by;
  std::vector<std::pair<ColumnRef, bool>> order_by;  // (column, ascending)
  int64_t limit = -1;                                // -1 = none
  std::shared_ptr<SelectStatement> union_next;

  // Number of join predicates (column-column equality conjuncts).
  int NumJoins() const {
    int n = 0;
    for (const auto& p : predicates) n += p.IsJoin() ? 1 : 0;
    return n;
  }
  // Resolves a binding name (alias or table name) to the table name;
  // returns empty string if not found.
  std::string ResolveTable(const std::string& qualifier) const {
    for (const auto& t : tables) {
      if (t.BindingName() == qualifier || t.table == qualifier) return t.table;
    }
    return "";
  }
};

}  // namespace preqr::sql

#endif  // PREQR_SQL_AST_H_
