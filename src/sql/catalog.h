#ifndef PREQR_SQL_CATALOG_H_
#define PREQR_SQL_CATALOG_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace preqr::sql {

enum class ColumnType { kInt, kFloat, kString };

const char* ColumnTypeName(ColumnType type);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  bool is_primary_key = false;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;

  // Index of a column by name, or -1.
  int ColumnIndex(const std::string& column) const;
  // Index of the primary key column, or -1.
  int PrimaryKeyIndex() const;
};

// A foreign-key relationship: from_table.from_column references
// to_table.to_column (the referenced column is a primary key).
struct ForeignKey {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_column;
};

// Database schema: tables + PK/FK relationships. This is the `S` of the
// paper's F : Q x S -> Y.
class Catalog {
 public:
  Catalog() = default;

  void AddTable(TableDef table);
  Status AddForeignKey(ForeignKey fk);

  const std::vector<TableDef>& tables() const { return tables_; }
  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }

  // Lookup by table name; nullptr if absent.
  const TableDef* FindTable(const std::string& name) const;
  int TableIndex(const std::string& name) const;

  // True if (a.col_a, b.col_b) is a PK-FK pair in either direction.
  bool IsJoinableFk(const std::string& table_a, const std::string& col_a,
                    const std::string& table_b, const std::string& col_b) const;

  // All FKs where `table` is on the referencing ("from") side.
  std::vector<ForeignKey> ForeignKeysFrom(const std::string& table) const;

  int TotalColumns() const;

 private:
  std::vector<TableDef> tables_;
  std::vector<ForeignKey> fks_;
};

}  // namespace preqr::sql

#endif  // PREQR_SQL_CATALOG_H_
