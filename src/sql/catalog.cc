#include "sql/catalog.h"

#include <algorithm>

namespace preqr::sql {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kFloat:
      return "FLOAT";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

int TableDef::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

int TableDef::PrimaryKeyIndex() const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].is_primary_key) return static_cast<int>(i);
  }
  return -1;
}

void Catalog::AddTable(TableDef table) { tables_.push_back(std::move(table)); }

Status Catalog::AddForeignKey(ForeignKey fk) {
  const TableDef* from = FindTable(fk.from_table);
  const TableDef* to = FindTable(fk.to_table);
  if (from == nullptr || to == nullptr) {
    return Status::NotFound("FK references unknown table");
  }
  if (from->ColumnIndex(fk.from_column) < 0 ||
      to->ColumnIndex(fk.to_column) < 0) {
    return Status::NotFound("FK references unknown column");
  }
  fks_.push_back(std::move(fk));
  return Status::Ok();
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  const int idx = TableIndex(name);
  return idx < 0 ? nullptr : &tables_[static_cast<size_t>(idx)];
}

int Catalog::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Catalog::IsJoinableFk(const std::string& table_a, const std::string& col_a,
                           const std::string& table_b,
                           const std::string& col_b) const {
  for (const auto& fk : fks_) {
    if (fk.from_table == table_a && fk.from_column == col_a &&
        fk.to_table == table_b && fk.to_column == col_b) {
      return true;
    }
    if (fk.from_table == table_b && fk.from_column == col_b &&
        fk.to_table == table_a && fk.to_column == col_a) {
      return true;
    }
  }
  return false;
}

std::vector<ForeignKey> Catalog::ForeignKeysFrom(
    const std::string& table) const {
  std::vector<ForeignKey> out;
  for (const auto& fk : fks_) {
    if (fk.from_table == table) out.push_back(fk);
  }
  return out;
}

int Catalog::TotalColumns() const {
  int n = 0;
  for (const auto& t : tables_) n += static_cast<int>(t.columns.size());
  return n;
}

}  // namespace preqr::sql
