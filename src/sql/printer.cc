#include "sql/printer.h"

#include <cstdio>

namespace preqr::sql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kLike:
      return "LIKE";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kBetween:
      return "BETWEEN";
  }
  return "?";
}

Literal Literal::Int(int64_t v) {
  Literal l;
  l.kind = Kind::kInt;
  l.int_value = v;
  return l;
}

Literal Literal::Float(double v) {
  Literal l;
  l.kind = Kind::kFloat;
  l.float_value = v;
  return l;
}

Literal Literal::String(std::string v) {
  Literal l;
  l.kind = Kind::kString;
  l.string_value = std::move(v);
  return l;
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kInt:
      return std::to_string(int_value);
    case Kind::kFloat: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", float_value);
      return buf;
    }
    case Kind::kString:
      return "'" + string_value + "'";
  }
  return "";
}

bool operator==(const Literal& a, const Literal& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Literal::Kind::kInt:
      return a.int_value == b.int_value;
    case Literal::Kind::kFloat:
      return a.float_value == b.float_value;
    case Literal::Kind::kString:
      return a.string_value == b.string_value;
  }
  return false;
}

namespace {

void AppendSelectItem(const SelectItem& item, std::string& out) {
  if (item.agg != AggFunc::kNone) {
    out += AggFuncName(item.agg);
    out += "(";
    out += item.star ? "*" : item.column.ToString();
    out += ")";
  } else if (item.star) {
    out += "*";
  } else {
    out += item.column.ToString();
  }
}

void AppendPredicate(const Predicate& p, std::string& out) {
  out += p.lhs.ToString();
  switch (p.op) {
    case CompareOp::kBetween:
      out += " BETWEEN " + p.values[0].ToString() + " AND " +
             p.values[1].ToString();
      return;
    case CompareOp::kIn:
      out += " IN (";
      if (p.subquery) {
        out += ToSql(*p.subquery);
      } else {
        for (size_t i = 0; i < p.values.size(); ++i) {
          if (i > 0) out += ",";
          out += p.values[i].ToString();
        }
      }
      out += ")";
      return;
    default:
      break;
  }
  out += " ";
  out += CompareOpSymbol(p.op);
  out += " ";
  if (p.rhs_is_column) {
    out += p.rhs_column.ToString();
  } else {
    out += p.values[0].ToString();
  }
}

}  // namespace

std::string ToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    AppendSelectItem(stmt.items[i], out);
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.tables[i].table;
    if (!stmt.tables[i].alias.empty()) out += " " + stmt.tables[i].alias;
  }
  if (!stmt.predicates.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < stmt.predicates.size(); ++i) {
      if (i > 0) out += " AND ";
      AppendPredicate(stmt.predicates[i], out);
    }
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.group_by[i].ToString();
    }
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.order_by[i].first.ToString();
      if (!stmt.order_by[i].second) out += " DESC";
    }
  }
  if (stmt.limit >= 0) out += " LIMIT " + std::to_string(stmt.limit);
  if (stmt.union_next) out += " UNION " + ToSql(*stmt.union_next);
  return out;
}

}  // namespace preqr::sql
