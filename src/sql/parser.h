#ifndef PREQR_SQL_PARSER_H_
#define PREQR_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace preqr::sql {

// Parses a SQL SELECT statement (the dialect used throughout the paper:
// aggregates, implicit and explicit joins, conjunctive WHERE with
// =/<>/</<=/>/>=/LIKE/IN/BETWEEN, IN-subqueries, UNION, GROUP BY,
// ORDER BY, LIMIT). Returns a ParseError status on malformed input.
Result<SelectStatement> Parse(const std::string& sql);

}  // namespace preqr::sql

#endif  // PREQR_SQL_PARSER_H_
