#include "baselines/sim.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace preqr::baselines {

namespace {

// Collects tagged terms from a statement (recursing into subqueries/UNION).
void CollectTerms(const sql::SelectStatement& stmt,
                  std::set<std::string>* selection,
                  std::set<std::string>* joins,
                  std::set<std::string>* group_by,
                  std::set<std::string>* tables) {
  for (const auto& t : stmt.tables) tables->insert(t.table);
  for (const auto& item : stmt.items) {
    if (!item.star) selection->insert(item.column.column);
  }
  for (const auto& pred : stmt.predicates) {
    if (pred.IsJoin()) {
      std::string a = pred.lhs.column, b = pred.rhs_column.column;
      if (b < a) std::swap(a, b);
      joins->insert(a + "=" + b);
    } else {
      selection->insert(pred.lhs.column + std::string(
                            sql::CompareOpSymbol(pred.op)));
      if (pred.subquery) {
        CollectTerms(*pred.subquery, selection, joins, group_by, tables);
      }
    }
  }
  for (const auto& g : stmt.group_by) group_by->insert(g.column);
  if (stmt.union_next) {
    CollectTerms(*stmt.union_next, selection, joins, group_by, tables);
  }
}

double JaccardSets(const std::set<std::string>& a,
                   const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& x : a) inter += b.count(x);
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

}  // namespace

std::vector<std::string> AouicheFeatures(const sql::SelectStatement& stmt) {
  std::set<std::string> selection, joins, group_by, tables;
  CollectTerms(stmt, &selection, &joins, &group_by, &tables);
  std::vector<std::string> out;
  for (const auto& s : selection) out.push_back("s:" + s);
  for (const auto& j : joins) out.push_back("j:" + j);
  for (const auto& g : group_by) out.push_back("g:" + g);
  return out;
}

double AouicheDistance(const sql::SelectStatement& a,
                       const sql::SelectStatement& b) {
  // Normalized Hamming distance over the union of observed features.
  const auto fa = AouicheFeatures(a);
  const auto fb = AouicheFeatures(b);
  std::set<std::string> universe(fa.begin(), fa.end());
  universe.insert(fb.begin(), fb.end());
  if (universe.empty()) return 0.0;
  std::set<std::string> sa(fa.begin(), fa.end());
  std::set<std::string> sb(fb.begin(), fb.end());
  size_t differing = 0;
  for (const auto& f : universe) {
    if (sa.count(f) != sb.count(f)) ++differing;
  }
  return static_cast<double>(differing) / static_cast<double>(universe.size());
}

double AligonDistance(const sql::SelectStatement& a,
                      const sql::SelectStatement& b) {
  std::set<std::string> sel_a, join_a, group_a, tab_a;
  std::set<std::string> sel_b, join_b, group_b, tab_b;
  CollectTerms(a, &sel_a, &join_a, &group_a, &tab_a);
  CollectTerms(b, &sel_b, &join_b, &group_b, &tab_b);
  // Aligon et al. weight selection and joins highest, then group-by.
  const double sim = 0.4 * JaccardSets(sel_a, sel_b) +
                     0.4 * JaccardSets(join_a, join_b) +
                     0.2 * JaccardSets(group_a, group_b);
  return 1.0 - sim;
}

std::map<std::string, double> MakiyamaVector(
    const sql::SelectStatement& stmt) {
  std::map<std::string, double> tf;
  for (const auto& item : stmt.items) {
    if (item.star) {
      tf["select:*"] += 1;
    } else {
      tf["select:" + item.column.column] += 1;
    }
    if (item.agg != sql::AggFunc::kNone) {
      tf[std::string("agg:") + sql::AggFuncName(item.agg)] += 1;
    }
  }
  for (const auto& t : stmt.tables) tf["from:" + t.table] += 1;
  for (const auto& pred : stmt.predicates) {
    if (pred.IsJoin()) {
      std::string a = pred.lhs.column, b = pred.rhs_column.column;
      if (b < a) std::swap(a, b);
      tf["join:" + a + "=" + b] += 1;
    } else {
      tf["where:" + pred.lhs.column] += 1;
      tf[std::string("op:") + sql::CompareOpSymbol(pred.op)] += 1;
      if (pred.subquery) {
        for (const auto& [k, v] : MakiyamaVector(*pred.subquery)) {
          tf[k] += v;
        }
      }
    }
  }
  for (const auto& g : stmt.group_by) tf["groupby:" + g.column] += 1;
  for (const auto& o : stmt.order_by) tf["orderby:" + o.first.column] += 1;
  if (stmt.union_next) {
    for (const auto& [k, v] : MakiyamaVector(*stmt.union_next)) tf[k] += v;
  }
  return tf;
}

double MakiyamaDistance(const sql::SelectStatement& a,
                        const sql::SelectStatement& b) {
  const auto va = MakiyamaVector(a);
  const auto vb = MakiyamaVector(b);
  double dot = 0, na = 0, nb = 0;
  for (const auto& [k, v] : va) {
    na += v * v;
    auto it = vb.find(k);
    if (it != vb.end()) dot += v * it->second;
  }
  for (const auto& [k, v] : vb) nb += v * v;
  if (na == 0 || nb == 0) return 1.0;
  const double cos = dot / (std::sqrt(na) * std::sqrt(nb));
  return 1.0 - cos;
}

double CosineDistance(const std::vector<float>& a,
                      const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return 1.0;
  const double cos = dot / (std::sqrt(na) * std::sqrt(nb));
  // cos in [-1, 1] -> distance in [0, 1].
  return std::clamp((1.0 - cos) / 2.0, 0.0, 1.0);
}

}  // namespace preqr::baselines
