#ifndef PREQR_BASELINES_SIM_H_
#define PREQR_BASELINES_SIM_H_

#include <map>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace preqr::baselines {

// Pairwise SQL-similarity baselines of Section 4.3.1. All distances are in
// [0, 1]; 0 = identical under the metric.

// Aouiche et al.: binary vector over (selection attrs | join attrs |
// group-by attrs), compared with normalized Hamming distance.
std::vector<std::string> AouicheFeatures(const sql::SelectStatement& stmt);
double AouicheDistance(const sql::SelectStatement& a,
                       const sql::SelectStatement& b);

// Aligon et al.: {selection, join, group-by} term sets compared with the
// Jaccard coefficient (join/selection weighted highest).
double AligonDistance(const sql::SelectStatement& a,
                      const sql::SelectStatement& b);

// Makiyama et al.: term-frequency vector over tagged query terms
// (select:, from:, where:, join:, groupby:, orderby:), cosine distance.
std::map<std::string, double> MakiyamaVector(const sql::SelectStatement& stmt);
double MakiyamaDistance(const sql::SelectStatement& a,
                        const sql::SelectStatement& b);

// Cosine distance between two dense vectors (used by One-hotDis /
// Seq2SeqDis / PreQRDis): 1 - cos(a, b), mapped into [0, 1].
double CosineDistance(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_SIM_H_
