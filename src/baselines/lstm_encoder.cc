#include "baselines/lstm_encoder.h"

#include <algorithm>

#include "sql/lexer.h"

namespace preqr::baselines {

namespace {
constexpr int kUnk = 0;
}  // namespace

LstmQueryEncoder::LstmQueryEncoder(int embed_dim, int hidden_dim,
                                   uint64_t seed)
    : embed_(embed_dim), hidden_(hidden_dim), rng_(seed) {
  vocab_["[UNK]"] = kUnk;
}

void LstmQueryEncoder::BuildVocab(const std::vector<std::string>& corpus) {
  std::vector<double> numbers;
  for (const auto& sql : corpus) {
    auto lexed = sql::Lex(sql);
    if (!lexed.ok()) continue;
    for (const auto& tok : lexed.value()) {
      switch (tok.type) {
        case sql::TokenType::kNumber:
          numbers.push_back(tok.number);
          break;
        case sql::TokenType::kString:
          break;  // all strings collapse to [STR]
        case sql::TokenType::kEnd:
          break;
        default:
          if (vocab_.find(tok.text) == vocab_.end()) {
            vocab_[tok.text] = static_cast<int>(vocab_.size());
          }
      }
    }
  }
  vocab_.emplace("[STR]", static_cast<int>(vocab_.size()));
  for (int d = 0; d < 10; ++d) {
    vocab_.emplace("[NUM" + std::to_string(d) + "]",
                   static_cast<int>(vocab_.size()));
  }
  // Global numeric deciles: one scale shared by every column.
  std::sort(numbers.begin(), numbers.end());
  global_quantiles_.clear();
  for (int q = 1; q < 10 && !numbers.empty(); ++q) {
    global_quantiles_.push_back(
        numbers[static_cast<size_t>(q) * (numbers.size() - 1) / 10]);
  }
  embedding_ = std::make_unique<nn::Embedding>(
      static_cast<int>(vocab_.size()), embed_, rng_);
  lstm_ = std::make_unique<nn::BiLstm>(embed_, hidden_, rng_);
}

int LstmQueryEncoder::TokenId(const std::string& word) const {
  auto it = vocab_.find(word);
  return it == vocab_.end() ? kUnk : it->second;
}

std::string LstmQueryEncoder::NumberToken(double value) const {
  int d = 0;
  for (double q : global_quantiles_) {
    if (value > q) ++d;
  }
  return "[NUM" + std::to_string(std::min(d, 9)) + "]";
}

std::vector<int> LstmQueryEncoder::TokenIds(const std::string& sql) const {
  std::vector<int> ids;
  auto lexed = sql::Lex(sql);
  if (!lexed.ok()) return {kUnk};
  for (const auto& tok : lexed.value()) {
    switch (tok.type) {
      case sql::TokenType::kNumber:
        ids.push_back(TokenId(NumberToken(tok.number)));
        break;
      case sql::TokenType::kString:
        ids.push_back(TokenId("[STR]"));
        break;
      case sql::TokenType::kEnd:
        break;
      default:
        ids.push_back(TokenId(tok.text));
    }
  }
  if (ids.empty()) ids.push_back(kUnk);
  return ids;
}

nn::Tensor LstmQueryEncoder::EncodeSequence(const std::string& sql,
                                            bool /*train*/) {
  PREQR_CHECK_MSG(lstm_ != nullptr, "BuildVocab must be called first");
  const std::vector<int> ids = TokenIds(sql);
  nn::Tensor emb = embedding_->Forward(ids);
  return lstm_->Forward(emb).per_step;  // [S, 2h]
}

nn::Tensor LstmQueryEncoder::EncodeVector(const std::string& sql,
                                          bool /*train*/) {
  PREQR_CHECK_MSG(lstm_ != nullptr, "BuildVocab must be called first");
  const std::vector<int> ids = TokenIds(sql);
  nn::Tensor emb = embedding_->Forward(ids);
  return lstm_->Forward(emb).summary;  // [1, 2h]
}

std::vector<nn::Tensor> LstmQueryEncoder::TrainableParameters() {
  std::vector<nn::Tensor> params = embedding_->Parameters();
  for (const auto& t : lstm_->Parameters()) params.push_back(t);
  return params;
}

}  // namespace preqr::baselines
