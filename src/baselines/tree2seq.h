#ifndef PREQR_BASELINES_TREE2SEQ_H_
#define PREQR_BASELINES_TREE2SEQ_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "common/rng.h"
#include "nn/module.h"

namespace preqr::baselines {

// Tree-to-sequence encoder (Eriguchi et al. flavor): the SQL AST is encoded
// bottom-up — each node's vector is a nonlinear function of its type/token
// embedding and the *mean* of its children. As the paper notes, this
// aggregation keeps descendants but loses sibling relations. The memory is
// the set of node vectors in pre-order.
class Tree2SeqEncoder : public SequenceEncoder {
 public:
  Tree2SeqEncoder(int dim, uint64_t seed);

  nn::Tensor EncodeSequence(const std::string& sql, bool train) override;
  std::vector<nn::Tensor> TrainableParameters() override;
  int dim() const override { return dim_; }
  std::string name() const override { return "Tree2Seq"; }

 private:
  static constexpr int kHashVocab = 512;
  int dim_;
  Rng rng_;
  nn::Embedding embedding_;  // hashed token/type embedding
  nn::Linear combine_;       // [emb ; children-mean] -> dim
};

// Graph-to-sequence encoder (Xu et al. flavor): the query is a token graph
// with next/prev/same-clause relations, propagated by a 2-layer relational
// GCN; node states form the decoder memory.
class Graph2SeqEncoder : public SequenceEncoder {
 public:
  Graph2SeqEncoder(int dim, uint64_t seed);

  nn::Tensor EncodeSequence(const std::string& sql, bool train) override;
  std::vector<nn::Tensor> TrainableParameters() override;
  int dim() const override { return dim_; }
  std::string name() const override { return "Graph2Seq"; }

 private:
  static constexpr int kHashVocab = 512;
  static constexpr int kRelations = 3;  // next, prev, same-clause
  int dim_;
  Rng rng_;
  nn::Embedding embedding_;
  nn::RgcnLayer gcn1_, gcn2_;
};

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_TREE2SEQ_H_
