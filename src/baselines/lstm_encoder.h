#ifndef PREQR_BASELINES_LSTM_ENCODER_H_
#define PREQR_BASELINES_LSTM_ENCODER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "common/rng.h"
#include "nn/module.h"

namespace preqr::baselines {

// LSTM query encoder in the style of the learning-based cost estimator
// (Sun & Li): the query is treated as *plain text* — no schema linking, no
// structure channel — and numeric literals are mapped to globally
// normalized decile tokens (one shared scale for all columns). Both
// weaknesses are the ones Section 4.5 attributes to LSTM baselines.
class LstmQueryEncoder : public QueryEncoder, public SequenceEncoder {
 public:
  LstmQueryEncoder(int embed_dim, int hidden_dim, uint64_t seed);

  // Builds the word vocabulary and the global numeric quantiles from a
  // training corpus. Must be called before encoding.
  void BuildVocab(const std::vector<std::string>& corpus);

  nn::Tensor EncodeVector(const std::string& sql, bool train) override;
  nn::Tensor EncodeSequence(const std::string& sql, bool train) override;
  std::vector<nn::Tensor> TrainableParameters() override;
  int dim() const override { return 2 * hidden_; }
  std::string name() const override { return "LSTM"; }

  // Token ids for a query under this encoder's plain-text view.
  std::vector<int> TokenIds(const std::string& sql) const;
  int vocab_size() const { return static_cast<int>(vocab_.size()); }

 private:
  int TokenId(const std::string& word) const;
  std::string NumberToken(double value) const;

  int embed_, hidden_;
  Rng rng_;
  std::map<std::string, int> vocab_;
  std::vector<double> global_quantiles_;  // 9 cut points -> 10 decile tokens
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::BiLstm> lstm_;
};

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_LSTM_ENCODER_H_
