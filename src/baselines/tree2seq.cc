#include "baselines/tree2seq.h"

#include <functional>

#include "automaton/symbol.h"
#include "nn/ops.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace preqr::baselines {

namespace {
int HashId(const std::string& token, int vocab) {
  return static_cast<int>(std::hash<std::string>{}(token) %
                          static_cast<size_t>(vocab));
}
}  // namespace

Tree2SeqEncoder::Tree2SeqEncoder(int dim, uint64_t seed)
    : dim_(dim),
      rng_(seed),
      embedding_(kHashVocab, dim, rng_),
      combine_(2 * dim, dim, rng_) {}

nn::Tensor Tree2SeqEncoder::EncodeSequence(const std::string& sql,
                                           bool /*train*/) {
  auto parsed = sql::Parse(sql);
  std::vector<nn::Tensor> memory;

  // Encodes one labeled node given its children vectors.
  std::function<nn::Tensor(const std::string&, const std::vector<nn::Tensor>&)>
      encode_node = [&](const std::string& label,
                        const std::vector<nn::Tensor>& children) {
        nn::Tensor emb = embedding_.Forward({HashId(label, kHashVocab)});
        nn::Tensor child_mean;
        if (children.empty()) {
          child_mean = nn::Tensor::Zeros({1, dim_});
        } else {
          child_mean = nn::Reshape(
              nn::MeanRows(nn::ConcatRows(children)), {1, dim_});
        }
        nn::Tensor out =
            nn::Tanh(combine_.Forward(nn::ConcatLastDim({emb, child_mean})));
        memory.push_back(out);
        return out;
      };

  std::function<nn::Tensor(const sql::SelectStatement&)> encode_stmt =
      [&](const sql::SelectStatement& stmt) -> nn::Tensor {
    std::vector<nn::Tensor> top_children;
    for (const auto& item : stmt.items) {
      std::vector<nn::Tensor> kids;
      if (!item.star) kids.push_back(encode_node(item.column.column, {}));
      top_children.push_back(encode_node(
          item.agg != sql::AggFunc::kNone ? sql::AggFuncName(item.agg)
                                          : "ITEM",
          kids));
    }
    for (const auto& t : stmt.tables) {
      top_children.push_back(encode_node(t.table, {}));
    }
    for (const auto& pred : stmt.predicates) {
      std::vector<nn::Tensor> kids;
      kids.push_back(encode_node(pred.lhs.column, {}));
      if (pred.rhs_is_column) {
        kids.push_back(encode_node(pred.rhs_column.column, {}));
      }
      for (const auto& v : pred.values) {
        kids.push_back(encode_node(v.ToString(), {}));
      }
      if (pred.subquery) kids.push_back(encode_stmt(*pred.subquery));
      top_children.push_back(
          encode_node(sql::CompareOpSymbol(pred.op), kids));
    }
    for (const auto& g : stmt.group_by) {
      top_children.push_back(encode_node("GROUPBY:" + g.column, {}));
    }
    if (stmt.union_next) top_children.push_back(encode_stmt(*stmt.union_next));
    return encode_node("SELECT", top_children);
  };

  if (parsed.ok()) {
    encode_stmt(parsed.value());
  } else {
    encode_node("[BAD]", {});
  }
  return nn::ConcatRows(memory);  // [num_nodes, dim]
}

std::vector<nn::Tensor> Tree2SeqEncoder::TrainableParameters() {
  std::vector<nn::Tensor> params = embedding_.Parameters();
  for (const auto& t : combine_.Parameters()) params.push_back(t);
  return params;
}

Graph2SeqEncoder::Graph2SeqEncoder(int dim, uint64_t seed)
    : dim_(dim),
      rng_(seed),
      embedding_(kHashVocab, dim, rng_),
      gcn1_(dim, dim, kRelations, rng_),
      gcn2_(dim, dim, kRelations, rng_) {}

nn::Tensor Graph2SeqEncoder::EncodeSequence(const std::string& sql,
                                            bool /*train*/) {
  auto lexed = sql::Lex(sql);
  std::vector<int> ids;
  std::vector<int> clause;  // clause id per token for same-clause edges
  int cur_clause = 0;
  if (lexed.ok()) {
    for (const auto& tok : lexed.value()) {
      if (tok.type == sql::TokenType::kEnd) break;
      if (tok.IsKeyword("SELECT") || tok.IsKeyword("FROM") ||
          tok.IsKeyword("WHERE") || tok.IsKeyword("GROUP") ||
          tok.IsKeyword("ORDER") || tok.IsKeyword("UNION")) {
        ++cur_clause;
      }
      ids.push_back(HashId(tok.text, kHashVocab));
      clause.push_back(cur_clause);
    }
  }
  if (ids.empty()) {
    ids.push_back(0);
    clause.push_back(0);
  }
  const int n = static_cast<int>(ids.size());
  std::vector<std::vector<nn::Edge>> rel(kRelations);
  for (int i = 0; i + 1 < n; ++i) {
    rel[0].push_back({i, i + 1});      // next
    rel[1].push_back({i + 1, i});      // prev
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n && j <= i + 8; ++j) {
      if (clause[static_cast<size_t>(i)] == clause[static_cast<size_t>(j)]) {
        rel[2].push_back({i, j});
        rel[2].push_back({j, i});
      }
    }
  }
  std::vector<std::vector<float>> norms(kRelations);
  for (int r = 0; r < kRelations; ++r) {
    std::vector<int> indeg(static_cast<size_t>(n), 0);
    for (const auto& e : rel[static_cast<size_t>(r)]) {
      ++indeg[static_cast<size_t>(e.dst)];
    }
    for (const auto& e : rel[static_cast<size_t>(r)]) {
      norms[static_cast<size_t>(r)].push_back(
          1.0f / static_cast<float>(indeg[static_cast<size_t>(e.dst)]));
    }
  }
  nn::Tensor h = embedding_.Forward(ids);
  h = gcn1_.Forward(h, rel, norms);
  h = gcn2_.Forward(h, rel, norms);
  return h;  // [S, dim]
}

std::vector<nn::Tensor> Graph2SeqEncoder::TrainableParameters() {
  std::vector<nn::Tensor> params = embedding_.Parameters();
  for (const auto& t : gcn1_.Parameters()) params.push_back(t);
  for (const auto& t : gcn2_.Parameters()) params.push_back(t);
  return params;
}

}  // namespace preqr::baselines
