#include "baselines/feature_encoders.h"

#include "nn/ops.h"
#include "sql/parser.h"

namespace preqr::baselines {

nn::Tensor BitmapFeatureEncoder::EncodeVector(const std::string& sql,
                                              bool /*train*/) {
  auto parsed = sql::Parse(sql);
  std::vector<float> v(static_cast<size_t>(sampler_->sample_size()), 0.0f);
  if (parsed.ok() && !parsed.value().tables.empty()) {
    const auto& stmt = parsed.value();
    for (const auto& tref : stmt.tables) {
      const auto bm = sampler_->Bitmap(tref.table, stmt);
      for (size_t i = 0; i < bm.size(); ++i) v[i] += bm[i];
    }
    const float inv = 1.0f / static_cast<float>(stmt.tables.size());
    for (auto& x : v) x *= inv;
  }
  return nn::Tensor::FromData({1, sampler_->sample_size()}, std::move(v));
}

nn::Tensor ConcatEncoder::EncodeVector(const std::string& sql, bool train) {
  return nn::ConcatLastDim(
      {a_->EncodeVector(sql, train), b_->EncodeVector(sql, train)});
}

StatusOr<nn::Tensor> ConcatEncoder::TryEncodeVector(const std::string& sql,
                                                    bool train) {
  auto a = a_->TryEncodeVector(sql, train);
  if (!a.ok()) return a.status();
  auto b = b_->TryEncodeVector(sql, train);
  if (!b.ok()) return b.status();
  return nn::ConcatLastDim({a.value(), b.value()});
}

std::vector<nn::Tensor> ConcatEncoder::EncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  auto a = a_->EncodeVectorBatch(sqls, train);
  auto b = b_->EncodeVectorBatch(sqls, train);
  std::vector<nn::Tensor> out;
  out.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    out.push_back(nn::ConcatLastDim({a[i], b[i]}));
  }
  return out;
}

std::vector<StatusOr<nn::Tensor>> ConcatEncoder::TryEncodeVectorBatch(
    const std::vector<std::string>& sqls, bool train) {
  auto a = a_->TryEncodeVectorBatch(sqls, train);
  auto b = b_->TryEncodeVectorBatch(sqls, train);
  std::vector<StatusOr<nn::Tensor>> out;
  out.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (!a[i].ok()) {
      out.push_back(a[i].status());
    } else if (!b[i].ok()) {
      out.push_back(b[i].status());
    } else {
      out.push_back(nn::ConcatLastDim({a[i].value(), b[i].value()}));
    }
  }
  return out;
}

std::vector<nn::Tensor> ConcatEncoder::TrainableParameters() {
  std::vector<nn::Tensor> params = a_->TrainableParameters();
  for (const auto& t : b_->TrainableParameters()) params.push_back(t);
  return params;
}

}  // namespace preqr::baselines
