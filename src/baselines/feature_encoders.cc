#include "baselines/feature_encoders.h"

#include "nn/ops.h"
#include "sql/parser.h"

namespace preqr::baselines {

nn::Tensor BitmapFeatureEncoder::EncodeVector(const std::string& sql,
                                              bool /*train*/) {
  auto parsed = sql::Parse(sql);
  std::vector<float> v(static_cast<size_t>(sampler_->sample_size()), 0.0f);
  if (parsed.ok() && !parsed.value().tables.empty()) {
    const auto& stmt = parsed.value();
    for (const auto& tref : stmt.tables) {
      const auto bm = sampler_->Bitmap(tref.table, stmt);
      for (size_t i = 0; i < bm.size(); ++i) v[i] += bm[i];
    }
    const float inv = 1.0f / static_cast<float>(stmt.tables.size());
    for (auto& x : v) x *= inv;
  }
  return nn::Tensor::FromData({1, sampler_->sample_size()}, std::move(v));
}

nn::Tensor ConcatEncoder::EncodeVector(const std::string& sql, bool train) {
  return nn::ConcatLastDim(
      {a_->EncodeVector(sql, train), b_->EncodeVector(sql, train)});
}

std::vector<nn::Tensor> ConcatEncoder::TrainableParameters() {
  std::vector<nn::Tensor> params = a_->TrainableParameters();
  for (const auto& t : b_->TrainableParameters()) params.push_back(t);
  return params;
}

}  // namespace preqr::baselines
