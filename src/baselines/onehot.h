#ifndef PREQR_BASELINES_ONEHOT_H_
#define PREQR_BASELINES_ONEHOT_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "db/stats.h"
#include "sql/ast.h"

namespace preqr::baselines {

// MSCN-style one-hot featurization (Kipf et al.), reproducing the drawbacks
// Figure 1 criticizes on purpose:
//  * table set one-hot, join set one-hot (over the FK universe),
//  * predicate set: column one-hot + operator one-hot + value min-max
//    normalized to [0,1] with *equi-width* per-column ranges (ignoring the
//    value distribution), mean-pooled over predicates,
//  * optional per-table bitmap sample features (mean-pooled).
class OneHotEncoder : public QueryEncoder {
 public:
  // `sampler` may be null (the "NS" no-sampling variants of Figure 8).
  OneHotEncoder(const db::Database& db, const db::BitmapSampler* sampler);

  nn::Tensor EncodeVector(const std::string& sql, bool train) override;
  std::vector<nn::Tensor> TrainableParameters() override { return {}; }
  int dim() const override { return dim_; }
  std::string name() const override { return "OneHot"; }

  // Featurizes an already-parsed statement (exposed for tests).
  std::vector<float> Featurize(const sql::SelectStatement& stmt) const;

 private:
  const db::Database& db_;
  const db::BitmapSampler* sampler_;
  int dim_ = 0;
  int num_tables_ = 0;
  int num_columns_ = 0;
  std::map<std::string, int> table_index_;
  std::map<std::string, int> column_index_;  // "table.column"
  std::map<std::string, int> join_index_;    // "t1.c1=t2.c2" canonical
  // Per-column [min, max] for equi-width value normalization.
  std::map<std::string, std::pair<double, double>> ranges_;
};

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_ONEHOT_H_
