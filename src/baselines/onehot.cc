#include "baselines/onehot.h"

#include <algorithm>

#include "sql/parser.h"

namespace preqr::baselines {

namespace {
constexpr int kNumOps = 9;  // CompareOp cardinality

int OpIndex(sql::CompareOp op) { return static_cast<int>(op); }
}  // namespace

OneHotEncoder::OneHotEncoder(const db::Database& db,
                             const db::BitmapSampler* sampler)
    : db_(db), sampler_(sampler) {
  const auto& catalog = db.catalog();
  for (const auto& table : catalog.tables()) {
    table_index_[table.name] = num_tables_++;
    for (const auto& col : table.columns) {
      column_index_[table.name + "." + col.name] = num_columns_++;
    }
  }
  for (const auto& fk : catalog.foreign_keys()) {
    const std::string key = fk.from_table + "." + fk.from_column + "=" +
                            fk.to_table + "." + fk.to_column;
    join_index_[key] = static_cast<int>(join_index_.size());
  }
  // Equi-width per-column ranges from the data.
  for (const auto& table : db.tables()) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      const db::Column& col = table->column(static_cast<int>(c));
      if (col.type == sql::ColumnType::kString || col.size() == 0) continue;
      double lo = col.AsDouble(0), hi = col.AsDouble(0);
      for (size_t r = 1; r < col.size(); ++r) {
        lo = std::min(lo, col.AsDouble(r));
        hi = std::max(hi, col.AsDouble(r));
      }
      ranges_[table->name() + "." + table->def().columns[c].name] = {lo, hi};
    }
  }
  dim_ = num_tables_ + static_cast<int>(join_index_.size()) + num_columns_ +
         kNumOps + 1 + (sampler_ != nullptr ? sampler_->sample_size() : 0);
}

std::vector<float> OneHotEncoder::Featurize(
    const sql::SelectStatement& stmt) const {
  std::vector<float> v(static_cast<size_t>(dim_), 0.0f);
  const int join_base = num_tables_;
  const int col_base = join_base + static_cast<int>(join_index_.size());
  const int op_base = col_base + num_columns_;
  const int val_slot = op_base + kNumOps;

  // Table set.
  for (const auto& tref : stmt.tables) {
    auto it = table_index_.find(tref.table);
    if (it != table_index_.end()) v[static_cast<size_t>(it->second)] = 1.0f;
  }
  // Join set (canonicalized in both directions against the FK universe).
  for (const auto& pred : stmt.predicates) {
    if (!pred.IsJoin()) continue;
    const std::string lt = stmt.ResolveTable(pred.lhs.qualifier);
    const std::string rt = stmt.ResolveTable(pred.rhs_column.qualifier);
    const std::string a = lt + "." + pred.lhs.column;
    const std::string b = rt + "." + pred.rhs_column.column;
    auto it = join_index_.find(a + "=" + b);
    if (it == join_index_.end()) it = join_index_.find(b + "=" + a);
    if (it != join_index_.end()) {
      v[static_cast<size_t>(join_base + it->second)] = 1.0f;
    }
  }
  // Predicate set: mean-pooled (column one-hot, op one-hot, norm. value).
  int preds = 0;
  for (const auto& pred : stmt.predicates) {
    if (pred.IsJoin()) continue;
    ++preds;
    std::string table = stmt.ResolveTable(pred.lhs.qualifier);
    if (table.empty()) {
      // Unqualified: find the owning table among the FROM list.
      for (const auto& tref : stmt.tables) {
        const sql::TableDef* def = db_.catalog().FindTable(tref.table);
        if (def != nullptr && def->ColumnIndex(pred.lhs.column) >= 0) {
          table = tref.table;
          break;
        }
      }
    }
    const std::string key = table + "." + pred.lhs.column;
    auto cit = column_index_.find(key);
    if (cit != column_index_.end()) {
      v[static_cast<size_t>(col_base + cit->second)] += 1.0f;
    }
    v[static_cast<size_t>(op_base + OpIndex(pred.op))] += 1.0f;
    // Value normalized to [0,1] by the column's (min, max) — the paper's
    // "distribution variance ignored" drawback. Strings hash to [0,1].
    double value = 0.5;
    if (!pred.values.empty()) {
      const auto& lit = pred.values[0];
      if (lit.kind == sql::Literal::Kind::kString) {
        value = static_cast<double>(
                    std::hash<std::string>{}(lit.string_value) % 1000) /
                1000.0;
      } else {
        auto rit = ranges_.find(key);
        if (rit != ranges_.end() && rit->second.second > rit->second.first) {
          value = (lit.AsDouble() - rit->second.first) /
                  (rit->second.second - rit->second.first);
          value = std::clamp(value, 0.0, 1.0);
        }
      }
    }
    v[static_cast<size_t>(val_slot)] += static_cast<float>(value);
  }
  if (preds > 0) {
    const float inv = 1.0f / static_cast<float>(preds);
    for (int i = col_base; i <= val_slot; ++i) {
      v[static_cast<size_t>(i)] *= inv;
    }
  }
  // Bitmap sample features: mean over the query's tables.
  if (sampler_ != nullptr) {
    const int bm_base = val_slot + 1;
    for (const auto& tref : stmt.tables) {
      const auto bm = sampler_->Bitmap(tref.table, stmt);
      for (size_t i = 0; i < bm.size(); ++i) {
        v[static_cast<size_t>(bm_base) + i] += bm[i];
      }
    }
    if (!stmt.tables.empty()) {
      const float inv = 1.0f / static_cast<float>(stmt.tables.size());
      for (int i = 0; i < sampler_->sample_size(); ++i) {
        v[static_cast<size_t>(bm_base + i)] *= inv;
      }
    }
  }
  return v;
}

nn::Tensor OneHotEncoder::EncodeVector(const std::string& sql, bool /*train*/) {
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) {
    return nn::Tensor::Zeros({1, dim_});
  }
  std::vector<float> v = Featurize(parsed.value());
  return nn::Tensor::FromData({1, dim_}, std::move(v));
}

}  // namespace preqr::baselines
