#ifndef PREQR_BASELINES_ENCODER_H_
#define PREQR_BASELINES_ENCODER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace preqr::baselines {

// A query encoder producing a fixed-size feature vector [1, dim] for
// regression heads (cardinality / cost estimation). Implementations may be
// trainable (LSTM, PreQR last layer) or static featurizers (one-hot).
//
// The interface is batch-first and Status-propagating: the serving layer
// and the task loops call EncodeVectorBatch / TryEncodeVectorBatch so every
// encoder shares one call shape, and encoders with a parse path surface
// malformed SQL as an error Status instead of crashing. The per-query
// virtuals remain the primitive that featurizer baselines implement.
class QueryEncoder {
 public:
  virtual ~QueryEncoder() = default;

  // Encodes one SQL query. `train` enables gradient recording through the
  // encoder's trainable parameters (if any). Malformed input maps to the
  // encoder's fallback features (typically zeros) — use TryEncodeVector
  // when the caller needs the error.
  virtual nn::Tensor EncodeVector(const std::string& sql, bool train) = 0;

  // Status-propagating encode: an error Status for malformed SQL, the
  // feature vector otherwise. The default wraps EncodeVector, which never
  // fails for the static featurizers.
  virtual StatusOr<nn::Tensor> TryEncodeVector(const std::string& sql,
                                               bool train) {
    return EncodeVector(sql, train);
  }

  // Batched encode: output i is identical to EncodeVector(sqls[i], train).
  // The default runs serially; encoders with a cheaper batched path (PreQR
  // computes missing frozen prefixes across the thread pool) override.
  virtual std::vector<nn::Tensor> EncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) {
    std::vector<nn::Tensor> out;
    out.reserve(sqls.size());
    for (const auto& sql : sqls) out.push_back(EncodeVector(sql, train));
    return out;
  }

  // Batched Status-propagating encode: slots fail independently — a
  // malformed query yields an error Status in its slot without affecting
  // the others. This is the serving layer's dispatch point.
  virtual std::vector<StatusOr<nn::Tensor>> TryEncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) {
    std::vector<StatusOr<nn::Tensor>> out;
    out.reserve(sqls.size());
    for (const auto& sql : sqls) out.push_back(TryEncodeVector(sql, train));
    return out;
  }

  // Drops any memoized per-query state (e.g. PreQR's cached frozen
  // prefixes) after the underlying model's parameters changed. Default:
  // nothing to drop.
  virtual void InvalidateCache() {}

  // Parameters updated during downstream fine-tuning (may be empty).
  virtual std::vector<nn::Tensor> TrainableParameters() = 0;
  virtual int dim() const = 0;
  virtual std::string name() const = 0;
  // Hook called once before each optimizer step (e.g. to refresh a shared
  // schema encoding). Default: nothing.
  virtual void BeginStep(bool /*train*/) {}
};

// A query encoder producing a per-token memory [S, dim] for attention-based
// decoders (SQL-to-Text).
class SequenceEncoder {
 public:
  virtual ~SequenceEncoder() = default;
  virtual nn::Tensor EncodeSequence(const std::string& sql, bool train) = 0;
  virtual std::vector<nn::Tensor> TrainableParameters() = 0;
  virtual int dim() const = 0;
  // Width of EncodeSequence rows; defaults to dim() but may differ when an
  // encoder's fixed-vector read-out is wider than its token states.
  virtual int sequence_dim() const { return dim(); }
  virtual std::string name() const = 0;
};

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_ENCODER_H_
