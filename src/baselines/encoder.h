#ifndef PREQR_BASELINES_ENCODER_H_
#define PREQR_BASELINES_ENCODER_H_

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace preqr::baselines {

// A query encoder producing a fixed-size feature vector [1, dim] for
// regression heads (cardinality / cost estimation). Implementations may be
// trainable (LSTM, PreQR last layer) or static featurizers (one-hot).
class QueryEncoder {
 public:
  virtual ~QueryEncoder() = default;
  // Encodes one SQL query. `train` enables gradient recording through the
  // encoder's trainable parameters (if any).
  virtual nn::Tensor EncodeVector(const std::string& sql, bool train) = 0;
  // Parameters updated during downstream fine-tuning (may be empty).
  virtual std::vector<nn::Tensor> TrainableParameters() = 0;
  virtual int dim() const = 0;
  virtual std::string name() const = 0;
  // Hook called once before each optimizer step (e.g. to refresh a shared
  // schema encoding). Default: nothing.
  virtual void BeginStep(bool /*train*/) {}
};

// A query encoder producing a per-token memory [S, dim] for attention-based
// decoders (SQL-to-Text).
class SequenceEncoder {
 public:
  virtual ~SequenceEncoder() = default;
  virtual nn::Tensor EncodeSequence(const std::string& sql, bool train) = 0;
  virtual std::vector<nn::Tensor> TrainableParameters() = 0;
  virtual int dim() const = 0;
  // Width of EncodeSequence rows; defaults to dim() but may differ when an
  // encoder's fixed-vector read-out is wider than its token states.
  virtual int sequence_dim() const { return dim(); }
  virtual std::string name() const = 0;
};

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_ENCODER_H_
