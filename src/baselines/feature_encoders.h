#ifndef PREQR_BASELINES_FEATURE_ENCODERS_H_
#define PREQR_BASELINES_FEATURE_ENCODERS_H_

#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "db/stats.h"

namespace preqr::baselines {

// Static bitmap-sample features: the mean per-table sample bitmap of the
// query (Section 4.3.2's "bitmap sampling" optimization). Combined with any
// learned encoder via ConcatEncoder.
class BitmapFeatureEncoder : public QueryEncoder {
 public:
  explicit BitmapFeatureEncoder(const db::BitmapSampler* sampler)
      : sampler_(sampler) {}

  nn::Tensor EncodeVector(const std::string& sql, bool train) override;
  std::vector<nn::Tensor> TrainableParameters() override { return {}; }
  int dim() const override { return sampler_->sample_size(); }
  std::string name() const override { return "Bitmap"; }

 private:
  const db::BitmapSampler* sampler_;
};

// Concatenation of two encoders' feature vectors (e.g. PreQR + bitmaps,
// LSTM + bitmaps). Training flags and parameters pass through.
class ConcatEncoder : public QueryEncoder {
 public:
  ConcatEncoder(QueryEncoder* a, QueryEncoder* b) : a_(a), b_(b) {}

  nn::Tensor EncodeVector(const std::string& sql, bool train) override;
  StatusOr<nn::Tensor> TryEncodeVector(const std::string& sql,
                                       bool train) override;
  std::vector<nn::Tensor> EncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) override;
  std::vector<StatusOr<nn::Tensor>> TryEncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) override;
  void InvalidateCache() override {
    a_->InvalidateCache();
    b_->InvalidateCache();
  }
  std::vector<nn::Tensor> TrainableParameters() override;
  int dim() const override { return a_->dim() + b_->dim(); }
  std::string name() const override {
    return a_->name() + "+" + b_->name();
  }
  void BeginStep(bool train) override {
    a_->BeginStep(train);
    b_->BeginStep(train);
  }

 private:
  QueryEncoder* a_;
  QueryEncoder* b_;
};

}  // namespace preqr::baselines

#endif  // PREQR_BASELINES_FEATURE_ENCODERS_H_
