// Cardinality estimation with PreQR (the paper's flagship downstream task):
// pre-train once, then fine-tune the last SQLBERT layer together with a
// 3-layer FC head; compare against the PostgreSQL-style estimator.
//
//   ./build/examples/cardinality_estimation
#include <cstdio>

#include "automaton/template_extractor.h"
#include "baselines/feature_encoders.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "eval/metrics.h"
#include "pg/pg_estimator.h"
#include "schema/schema_graph.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

using namespace preqr;

int main() {
  db::Database imdb = workload::MakeImdbDatabase(42, 0.15);
  workload::ImdbQueryGenerator gen(imdb, 1);
  auto train = gen.Synthetic(250, 2);
  auto test = gen.Synthetic(60, 2);

  std::vector<std::string> train_sqls, test_sqls;
  std::vector<double> train_cards, test_cards;
  for (const auto& q : train) {
    train_sqls.push_back(q.sql);
    train_cards.push_back(q.true_card);
  }
  for (const auto& q : test) {
    test_sqls.push_back(q.sql);
    test_cards.push_back(q.true_card);
  }

  // Pre-train PreQR on the query log (no labels needed).
  db::StatsCollector collector;
  auto stats = collector.AnalyzeAll(imdb);
  text::SqlTokenizer tokenizer(imdb.catalog(), stats, 16);
  automaton::TemplateExtractor extractor(0.2);
  automaton::Automaton fa = extractor.BuildAutomaton(train_sqls);
  schema::SchemaGraph graph = schema::SchemaGraph::Build(imdb.catalog());
  core::PreqrConfig config;
  config.d_model = 48;
  core::PreqrModel model(config, &tokenizer, &fa, &graph);
  core::Pretrainer::Options popt;
  popt.epochs = 2;
  popt.verbose = true;
  core::Pretrainer(model, popt).Train(train_sqls);

  // Fine-tune with the bitmap-sampling optimization (Section 4.3.2).
  db::BitmapSampler sampler(imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  tasks::PreqrEncoder encoder(&model);
  baselines::ConcatEncoder features(&encoder, &bitmap);
  tasks::EstimatorModel::Options eopt;
  eopt.epochs = 6;
  eopt.verbose = true;
  tasks::EstimatorModel estimator(&features, eopt);
  estimator.Fit(train_sqls, train_cards);

  // Compare against PostgreSQL-style statistics on held-out queries.
  pg::PgEstimator pg_est(imdb);
  std::vector<double> preqr_preds = estimator.PredictAll(test_sqls);
  std::vector<double> pg_preds;
  for (const auto& q : test) {
    pg_preds.push_back(pg_est.EstimateCardinality(q.stmt));
  }
  const auto preqr_stats = eval::ComputeQErrors(test_cards, preqr_preds);
  const auto pg_stats = eval::ComputeQErrors(test_cards, pg_preds);
  std::printf("\nq-error            median     mean      max\n");
  std::printf("PostgreSQL-style  %7.2f %8.2f %8.1f\n", pg_stats.median,
              pg_stats.mean, pg_stats.max);
  std::printf("PreQR + FC head   %7.2f %8.2f %8.1f\n", preqr_stats.median,
              preqr_stats.mean, preqr_stats.max);

  std::printf("\nthree held-out examples:\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  true=%-8.0f preqr=%-10.0f pg=%-10.0f  %.72s...\n",
                test_cards[i], preqr_preds[i], pg_preds[i],
                test_sqls[i].c_str());
  }
  return 0;
}
