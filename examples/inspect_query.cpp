// Inspect how PreQR sees a query: lexical tokens, schema-linked tokens,
// range tokens with quantiles, structural symbols, and automaton states.
//
//   ./build/examples/inspect_query ["SELECT ... FROM ... WHERE ..."]
//
// Without an argument, a default IMDB query is inspected.
#include <cstdio>

#include "automaton/template_extractor.h"
#include "db/stats.h"
#include "pg/pg_estimator.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

using namespace preqr;

int main(int argc, char** argv) {
  const std::string sql =
      argc > 1 ? argv[1]
               : "SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                 "t.id = mc.movie_id AND t.production_year > 2010 AND "
                 "mc.company_id = 5";

  db::Database imdb = workload::MakeImdbDatabase(42, 0.1);
  db::StatsCollector collector;
  auto stats = collector.AnalyzeAll(imdb);
  text::SqlTokenizer tokenizer(imdb.catalog(), stats, 8);

  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("query:      %s\n", sql.c_str());
  std::printf("canonical:  %s\n", sql::ToSql(parsed.value()).c_str());
  std::printf("tables: %zu, joins: %d, filters: %zu\n\n",
              parsed.value().tables.size(), parsed.value().NumJoins(),
              parsed.value().predicates.size() -
                  static_cast<size_t>(parsed.value().NumJoins()));

  auto tokenized = tokenizer.Tokenize(sql);
  if (!tokenized.ok()) {
    std::fprintf(stderr, "tokenize error: %s\n",
                 tokenized.status().ToString().c_str());
    return 1;
  }

  // Automaton over a small frequent-query workload plus this query.
  workload::ImdbQueryGenerator gen(imdb, 1);
  std::vector<std::string> corpus = {sql};
  for (const auto& q : gen.Synthetic(60, 2)) corpus.push_back(q.sql);
  automaton::TemplateExtractor extractor(0.2);
  automaton::Automaton fa = extractor.BuildAutomaton(corpus);
  std::vector<automaton::Symbol> symbols(tokenized.value().symbols.begin() + 1,
                                         tokenized.value().symbols.end());
  auto match = fa.Match(symbols);

  std::printf("%-28s %-10s %-8s %s\n", "token", "symbol", "state",
              "quantile");
  for (size_t i = 0; i < tokenized.value().tokens.size(); ++i) {
    const int state =
        i == 0 ? fa.start_state()
               : match.states[i - 1];
    char quantile[16] = "";
    if (tokenized.value().quantiles[i] > 0) {
      std::snprintf(quantile, sizeof(quantile), "%.2f",
                    tokenized.value().quantiles[i]);
    }
    std::printf("%-28s %-10s a%-7d %s\n",
                tokenized.value().tokens[i].c_str(),
                automaton::SymbolName(tokenized.value().symbols[i]), state,
                quantile);
  }
  std::printf("\nautomaton: %d states, match %s\n", fa.num_states(),
              match.accepted ? "accepted" : "degraded (unseen template)");

  pg::PgEstimator pg_est(imdb);
  db::Executor exec(imdb);
  auto truth = exec.Execute(parsed.value());
  std::printf("\nPostgreSQL-style estimate: %.0f rows\n",
              pg_est.EstimateCardinality(parsed.value()));
  if (truth.ok()) {
    std::printf("true cardinality:          %.0f rows\n",
                truth.value().cardinality);
  }
  return 0;
}
