// Quickstart: build a database, pre-train PreQR on a small workload, and
// use the resulting representation — encode queries, compare their
// semantic distances, and inspect the automaton's view of query structure.
//
//   ./build/examples/quickstart
#include <chrono>
#include <cstdio>

#include "automaton/template_extractor.h"
#include "baselines/sim.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "schema/schema_graph.h"
#include "serving/encoder_service.h"
#include "tasks/preqr_encoder.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

using namespace preqr;

int main() {
  // 1. A database: the synthetic IMDB (22 tables, correlated data).
  db::Database imdb = workload::MakeImdbDatabase(/*seed=*/42, /*scale=*/0.1);
  std::printf("database: %zu tables, %zu foreign keys\n",
              imdb.catalog().tables().size(),
              imdb.catalog().foreign_keys().size());

  // 2. A frequent-query workload (what the DBMS would log).
  workload::ImdbQueryGenerator gen(imdb, 1);
  std::vector<std::string> workload_sqls = {
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2010"};
  for (const auto& q : gen.Synthetic(120, 2)) workload_sqls.push_back(q.sql);

  // 3. The three PreQR ingredients: tokenizer (schema-aware, range tokens),
  //    automaton (query structure), schema graph (Table 4 edge taxonomy).
  db::StatsCollector collector;
  auto stats = collector.AnalyzeAll(imdb);
  text::SqlTokenizer tokenizer(imdb.catalog(), stats, /*buckets=*/8);
  automaton::TemplateExtractor extractor(0.2);
  automaton::Automaton fa = extractor.BuildAutomaton(workload_sqls);
  schema::SchemaGraph graph = schema::SchemaGraph::Build(imdb.catalog());
  std::printf("automaton: %d states from the workload's templates\n",
              fa.num_states());
  std::printf("schema graph: %d nodes, %zu labeled edges\n",
              graph.num_nodes(), graph.edges().size());

  // 4. Pre-train with masked language modeling (Section 3.5.2).
  core::PreqrConfig config;
  config.d_model = 48;
  core::PreqrModel model(config, &tokenizer, &fa, &graph);
  core::Pretrainer::Options options;
  options.epochs = 2;
  options.verbose = true;
  core::Pretrainer pretrainer(model, options);
  pretrainer.Train(workload_sqls);

  // 5. Use the representation: queries q1/q3 of Figure 2 are logically
  //    equal; q5 only shares the schema neighborhood.
  const char* q1 =
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2010";
  const char* q1_rewrite =
      "SELECT COUNT(*) FROM title s WHERE s.production_year > 2010";
  const char* q_other =
      "SELECT COUNT(*) FROM movie_companies mc WHERE mc.company_type_id = 1";
  auto embed = [&](const char* sql) {
    auto enc = model.Encode(sql);
    PREQR_CHECK(enc.ok());
    return enc.value().cls.vec();
  };
  const auto e1 = embed(q1);
  std::printf("\ncosine distance (lower = more similar):\n");
  std::printf("  q1 vs alias-rewrite: %.4f\n",
              baselines::CosineDistance(e1, embed(q1_rewrite)));
  std::printf("  q1 vs other-table:   %.4f\n",
              baselines::CosineDistance(e1, embed(q_other)));

  // 6. Serve embeddings: wrap the encoder in an EncoderService to get a
  //    thread-safe front-end with a bounded LRU cache, micro-batching,
  //    per-request deadlines, admission control, and Status errors with
  //    canonical codes instead of crashes on malformed SQL.
  tasks::PreqrEncoder encoder(&model);
  serving::EncoderService service(&encoder);
  serving::EncodeRequest request;
  request.sql = q1;
  request.client_id = "quickstart";
  request.deadline = serving::DeadlineAfter(std::chrono::seconds(5));
  auto cold = service.Encode(request);  // cache miss: full encode
  auto warm = service.Encode(request);  // cache hit: LRU lookup + copy
  PREQR_CHECK(cold.ok() && warm.ok());
  std::printf("\nserving: %s dim=%d, %zu cached embedding(s)\n",
              service.name().c_str(), service.dim(),
              service.cached_embeddings());
  std::printf("serving q1 twice: miss cache_hit=%d, then hit cache_hit=%d\n",
              cold.value().cache_hit ? 1 : 0, warm.value().cache_hit ? 1 : 0);
  auto bad = service.Encode("this is not SQL at all");  // bare-SQL overload
  std::printf("serving a malformed query: %s\n",
              bad.ok() ? "(unexpectedly ok)" : bad.status().ToString().c_str());
  // The deterministic slice of service.metrics().DumpText() (the full dump
  // adds wall-clock latency percentiles, which would break this example's
  // byte-identical-across-thread-counts contract).
  const auto& metrics = service.metrics();
  std::printf("serving metrics: hit-rate %.2f (%llu hits / %llu requests), "
              "%llu error(s), %llu micro-batch(es)\n",
              metrics.CacheHitRate(),
              static_cast<unsigned long long>(metrics.cache_hits.value()),
              static_cast<unsigned long long>(metrics.requests.value()),
              static_cast<unsigned long long>(metrics.errors.value()),
              static_cast<unsigned long long>(metrics.batches.value()));
  // After further pre-training or incremental updates, drop stale entries:
  //   service.InvalidateCache();

  // 7. Inspect the automaton's structural view of a query.
  auto symbols = automaton::StructuralSymbols(q1);
  auto match = fa.Match(symbols);
  std::printf("\nstructure of q1: %s\n",
              automaton::SymbolsToString(automaton::Collapse(symbols)).c_str());
  std::printf("state sequence:");
  for (int s : match.states) std::printf(" a%d", s);
  std::printf("  (%s)\n", match.accepted ? "accepted" : "not accepted");
  return 0;
}
