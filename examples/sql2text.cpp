// SQL-to-Text generation: train the attention decoder on top of a PreQR
// encoder and generate English descriptions for held-out queries
// (Section 4.6).
//
//   ./build/examples/sql2text
#include <cstdio>

#include "automaton/template_extractor.h"
#include "baselines/lstm_encoder.h"
#include "core/pretrain.h"
#include "schema/schema_graph.h"
#include "tasks/preqr_encoder.h"
#include "tasks/sql2text.h"
#include "text/tokenizer.h"
#include "workload/sql2text.h"

using namespace preqr;

int main() {
  auto pairs = workload::MakeWikiSqlDataset(180);
  const size_t train_n = pairs.size() * 8 / 10;
  std::vector<workload::TextPair> train(pairs.begin(),
                                        pairs.begin() + train_n);
  std::vector<workload::TextPair> test(pairs.begin() + train_n, pairs.end());
  std::vector<std::string> train_sqls;
  for (const auto& p : train) train_sqls.push_back(p.sql);

  // Pre-train a PreQR encoder on the dataset's SQL side (no schema for
  // ad-hoc web tables; the automaton still provides structure).
  sql::Catalog catalog;
  std::vector<db::TableStats> stats;
  text::SqlTokenizer tokenizer(catalog, stats, 8);
  automaton::TemplateExtractor extractor(0.2);
  automaton::Automaton fa = extractor.BuildAutomaton(train_sqls);
  schema::SchemaGraph graph = schema::SchemaGraph::Build(catalog);
  core::PreqrConfig config;
  config.d_model = 48;
  config.use_schema = false;
  core::PreqrModel model(config, &tokenizer, &fa, &graph);
  core::Pretrainer::Options popt;
  popt.epochs = 2;
  core::Pretrainer(model, popt).Train(train_sqls);

  // Train the decoder; compare against the plain Seq2Seq encoder.
  tasks::Sql2TextModel::Options opt;
  opt.epochs = 5;
  opt.verbose = true;
  tasks::PreqrEncoder preqr_encoder(&model);
  tasks::Sql2TextModel preqr2seq(&preqr_encoder, opt);
  preqr2seq.Fit(train);

  baselines::LstmQueryEncoder lstm(32, 24, 3);
  lstm.BuildVocab(train_sqls);
  tasks::Sql2TextModel seq2seq(&lstm, opt);
  seq2seq.Fit(train);

  std::printf("\nBLEU  Seq2Seq  = %.1f\n", 100.0 * seq2seq.EvalBleu(test));
  std::printf("BLEU  PreQR2Seq = %.1f\n", 100.0 * preqr2seq.EvalBleu(test));

  std::printf("\ngenerations:\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  sql: %s\n", test[static_cast<size_t>(i)].sql.c_str());
    std::string ref, gen;
    for (const auto& w : test[static_cast<size_t>(i)].text) ref += w + " ";
    for (const auto& w :
         preqr2seq.Generate(test[static_cast<size_t>(i)].sql)) {
      gen += w + " ";
    }
    std::printf("  ref: %s\n  gen: %s\n\n", ref.c_str(), gen.c_str());
  }
  return 0;
}
