// Query clustering / similarity: compare the classic AST-based metrics with
// PreQR embeddings on a workload of logically-equivalent rewrite clusters.
//
//   ./build/examples/query_clustering
#include <cstdio>

#include "automaton/template_extractor.h"
#include "core/pretrain.h"
#include "eval/metrics.h"
#include "schema/schema_graph.h"
#include "tasks/clustering.h"
#include "tasks/preqr_encoder.h"
#include "text/tokenizer.h"
#include "workload/clustering_workloads.h"

using namespace preqr;

int main() {
  workload::ClusteringWorkload wl = workload::MakeIitBombayWorkload();
  std::printf("workload '%s': %zu queries in %d clusters\n", wl.name.c_str(),
              wl.queries.size(), 1 + *std::max_element(wl.labels.begin(),
                                                       wl.labels.end()));
  std::printf("example cluster (logically equivalent):\n  %s\n  %s\n",
              wl.queries[0].c_str(), wl.queries[1].c_str());

  // Classic AST metrics.
  const auto stmts = tasks::ParseAll(wl.queries);
  const auto report = [&](const char* name,
                          const std::vector<std::vector<double>>& distance) {
    std::printf("%-12s BetaCV = %.3f (smaller is better)\n", name,
                eval::BetaCV(distance, wl.labels));
  };
  std::printf("\n");
  report("Aouiche",
         tasks::AstDistanceMatrix(stmts, tasks::AstMetric::kAouiche));
  report("Aligon", tasks::AstDistanceMatrix(stmts, tasks::AstMetric::kAligon));
  report("Makiyama",
         tasks::AstDistanceMatrix(stmts, tasks::AstMetric::kMakiyama));

  // PreQR embeddings pre-trained on this workload.
  std::vector<db::TableStats> stats;  // schema-only workload: no data stats
  text::SqlTokenizer tokenizer(wl.catalog, stats, 8);
  automaton::TemplateExtractor extractor(0.2);
  automaton::Automaton fa = extractor.BuildAutomaton(wl.queries);
  schema::SchemaGraph graph = schema::SchemaGraph::Build(wl.catalog);
  core::PreqrConfig config;
  config.d_model = 48;
  core::PreqrModel model(config, &tokenizer, &fa, &graph);
  core::Pretrainer::Options popt;
  popt.epochs = 3;
  core::Pretrainer(model, popt).Train(wl.queries);
  tasks::PreqrEncoder encoder(&model);
  report("PreQRDis", tasks::EmbeddingDistanceMatrix(wl.queries, encoder));
  return 0;
}
