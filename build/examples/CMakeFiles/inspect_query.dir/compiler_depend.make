# Empty compiler generated dependencies file for inspect_query.
# This may be replaced when dependencies are built.
