file(REMOVE_RECURSE
  "CMakeFiles/inspect_query.dir/inspect_query.cpp.o"
  "CMakeFiles/inspect_query.dir/inspect_query.cpp.o.d"
  "inspect_query"
  "inspect_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
