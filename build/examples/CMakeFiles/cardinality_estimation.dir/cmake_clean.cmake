file(REMOVE_RECURSE
  "CMakeFiles/cardinality_estimation.dir/cardinality_estimation.cpp.o"
  "CMakeFiles/cardinality_estimation.dir/cardinality_estimation.cpp.o.d"
  "cardinality_estimation"
  "cardinality_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardinality_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
