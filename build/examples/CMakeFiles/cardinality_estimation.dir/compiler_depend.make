# Empty compiler generated dependencies file for cardinality_estimation.
# This may be replaced when dependencies are built.
