file(REMOVE_RECURSE
  "CMakeFiles/sql2text.dir/sql2text.cpp.o"
  "CMakeFiles/sql2text.dir/sql2text.cpp.o.d"
  "sql2text"
  "sql2text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql2text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
