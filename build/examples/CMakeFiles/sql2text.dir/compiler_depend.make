# Empty compiler generated dependencies file for sql2text.
# This may be replaced when dependencies are built.
