# Empty dependencies file for sql2text.
# This may be replaced when dependencies are built.
