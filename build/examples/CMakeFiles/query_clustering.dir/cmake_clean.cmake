file(REMOVE_RECURSE
  "CMakeFiles/query_clustering.dir/query_clustering.cpp.o"
  "CMakeFiles/query_clustering.dir/query_clustering.cpp.o.d"
  "query_clustering"
  "query_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
