# Empty dependencies file for query_clustering.
# This may be replaced when dependencies are built.
