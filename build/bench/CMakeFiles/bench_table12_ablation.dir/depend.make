# Empty dependencies file for bench_table12_ablation.
# This may be replaced when dependencies are built.
