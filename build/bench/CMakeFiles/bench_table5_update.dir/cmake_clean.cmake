file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_update.dir/bench_table5_update.cc.o"
  "CMakeFiles/bench_table5_update.dir/bench_table5_update.cc.o.d"
  "bench_table5_update"
  "bench_table5_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
