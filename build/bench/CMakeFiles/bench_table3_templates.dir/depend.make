# Empty dependencies file for bench_table3_templates.
# This may be replaced when dependencies are built.
