file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_templates.dir/bench_table3_templates.cc.o"
  "CMakeFiles/bench_table3_templates.dir/bench_table3_templates.cc.o.d"
  "bench_table3_templates"
  "bench_table3_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
