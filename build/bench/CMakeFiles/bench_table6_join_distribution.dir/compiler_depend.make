# Empty compiler generated dependencies file for bench_table6_join_distribution.
# This may be replaced when dependencies are built.
