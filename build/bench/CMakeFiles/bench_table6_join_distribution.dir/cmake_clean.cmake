file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_join_distribution.dir/bench_table6_join_distribution.cc.o"
  "CMakeFiles/bench_table6_join_distribution.dir/bench_table6_join_distribution.cc.o.d"
  "bench_table6_join_distribution"
  "bench_table6_join_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_join_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
