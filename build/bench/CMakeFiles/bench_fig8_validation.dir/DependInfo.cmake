
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_validation.cc" "bench/CMakeFiles/bench_fig8_validation.dir/bench_fig8_validation.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_validation.dir/bench_fig8_validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasks/CMakeFiles/preqr_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/preqr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/preqr_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/neurocard/CMakeFiles/preqr_neurocard.dir/DependInfo.cmake"
  "/root/repo/build/src/pg/CMakeFiles/preqr_pg.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/preqr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/preqr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/preqr_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/automaton/CMakeFiles/preqr_automaton.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/preqr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/preqr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/preqr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/preqr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/preqr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
