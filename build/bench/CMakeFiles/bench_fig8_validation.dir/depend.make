# Empty dependencies file for bench_fig8_validation.
# This may be replaced when dependencies are built.
