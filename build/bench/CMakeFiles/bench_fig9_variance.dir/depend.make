# Empty dependencies file for bench_fig9_variance.
# This may be replaced when dependencies are built.
