# Empty compiler generated dependencies file for bench_table13_model_size.
# This may be replaced when dependencies are built.
