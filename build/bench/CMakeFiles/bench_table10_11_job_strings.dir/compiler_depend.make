# Empty compiler generated dependencies file for bench_table10_11_job_strings.
# This may be replaced when dependencies are built.
