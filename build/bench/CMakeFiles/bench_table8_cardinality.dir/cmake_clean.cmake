file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_cardinality.dir/bench_table8_cardinality.cc.o"
  "CMakeFiles/bench_table8_cardinality.dir/bench_table8_cardinality.cc.o.d"
  "bench_table8_cardinality"
  "bench_table8_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
