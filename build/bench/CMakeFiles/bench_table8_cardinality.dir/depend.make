# Empty dependencies file for bench_table8_cardinality.
# This may be replaced when dependencies are built.
