file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_overall.dir/bench_table7_overall.cc.o"
  "CMakeFiles/bench_table7_overall.dir/bench_table7_overall.cc.o.d"
  "bench_table7_overall"
  "bench_table7_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
