# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_ops_grad_test[1]_include.cmake")
include("/root/repo/build/tests/nn_module_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/automaton_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/schema_graph_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/eval_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/pg_neurocard_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_preqr_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/workload_extra_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/model_update_test[1]_include.cmake")
