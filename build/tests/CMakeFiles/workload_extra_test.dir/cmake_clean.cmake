file(REMOVE_RECURSE
  "CMakeFiles/workload_extra_test.dir/workload_extra_test.cc.o"
  "CMakeFiles/workload_extra_test.dir/workload_extra_test.cc.o.d"
  "workload_extra_test"
  "workload_extra_test.pdb"
  "workload_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
