# Empty dependencies file for schema_graph_test.
# This may be replaced when dependencies are built.
