file(REMOVE_RECURSE
  "CMakeFiles/pg_neurocard_test.dir/pg_neurocard_test.cc.o"
  "CMakeFiles/pg_neurocard_test.dir/pg_neurocard_test.cc.o.d"
  "pg_neurocard_test"
  "pg_neurocard_test.pdb"
  "pg_neurocard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pg_neurocard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
