# Empty compiler generated dependencies file for pg_neurocard_test.
# This may be replaced when dependencies are built.
