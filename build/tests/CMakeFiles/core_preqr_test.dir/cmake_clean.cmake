file(REMOVE_RECURSE
  "CMakeFiles/core_preqr_test.dir/core_preqr_test.cc.o"
  "CMakeFiles/core_preqr_test.dir/core_preqr_test.cc.o.d"
  "core_preqr_test"
  "core_preqr_test.pdb"
  "core_preqr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_preqr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
