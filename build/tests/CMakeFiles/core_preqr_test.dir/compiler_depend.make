# Empty compiler generated dependencies file for core_preqr_test.
# This may be replaced when dependencies are built.
