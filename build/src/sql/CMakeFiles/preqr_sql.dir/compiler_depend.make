# Empty compiler generated dependencies file for preqr_sql.
# This may be replaced when dependencies are built.
