file(REMOVE_RECURSE
  "libpreqr_sql.a"
)
