file(REMOVE_RECURSE
  "CMakeFiles/preqr_sql.dir/catalog.cc.o"
  "CMakeFiles/preqr_sql.dir/catalog.cc.o.d"
  "CMakeFiles/preqr_sql.dir/lexer.cc.o"
  "CMakeFiles/preqr_sql.dir/lexer.cc.o.d"
  "CMakeFiles/preqr_sql.dir/parser.cc.o"
  "CMakeFiles/preqr_sql.dir/parser.cc.o.d"
  "CMakeFiles/preqr_sql.dir/printer.cc.o"
  "CMakeFiles/preqr_sql.dir/printer.cc.o.d"
  "libpreqr_sql.a"
  "libpreqr_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
