file(REMOVE_RECURSE
  "libpreqr_eval.a"
)
