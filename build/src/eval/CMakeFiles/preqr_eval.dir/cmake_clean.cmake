file(REMOVE_RECURSE
  "CMakeFiles/preqr_eval.dir/metrics.cc.o"
  "CMakeFiles/preqr_eval.dir/metrics.cc.o.d"
  "libpreqr_eval.a"
  "libpreqr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
