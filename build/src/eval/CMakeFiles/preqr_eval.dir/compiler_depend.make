# Empty compiler generated dependencies file for preqr_eval.
# This may be replaced when dependencies are built.
