file(REMOVE_RECURSE
  "libpreqr_schema.a"
)
