# Empty compiler generated dependencies file for preqr_schema.
# This may be replaced when dependencies are built.
