file(REMOVE_RECURSE
  "CMakeFiles/preqr_schema.dir/schema_graph.cc.o"
  "CMakeFiles/preqr_schema.dir/schema_graph.cc.o.d"
  "libpreqr_schema.a"
  "libpreqr_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
