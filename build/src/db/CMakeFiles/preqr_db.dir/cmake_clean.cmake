file(REMOVE_RECURSE
  "CMakeFiles/preqr_db.dir/executor.cc.o"
  "CMakeFiles/preqr_db.dir/executor.cc.o.d"
  "CMakeFiles/preqr_db.dir/stats.cc.o"
  "CMakeFiles/preqr_db.dir/stats.cc.o.d"
  "libpreqr_db.a"
  "libpreqr_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
