# Empty dependencies file for preqr_db.
# This may be replaced when dependencies are built.
