file(REMOVE_RECURSE
  "libpreqr_db.a"
)
