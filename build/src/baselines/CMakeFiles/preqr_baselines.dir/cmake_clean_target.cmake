file(REMOVE_RECURSE
  "libpreqr_baselines.a"
)
