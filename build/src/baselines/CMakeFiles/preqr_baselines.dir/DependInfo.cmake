
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/feature_encoders.cc" "src/baselines/CMakeFiles/preqr_baselines.dir/feature_encoders.cc.o" "gcc" "src/baselines/CMakeFiles/preqr_baselines.dir/feature_encoders.cc.o.d"
  "/root/repo/src/baselines/lstm_encoder.cc" "src/baselines/CMakeFiles/preqr_baselines.dir/lstm_encoder.cc.o" "gcc" "src/baselines/CMakeFiles/preqr_baselines.dir/lstm_encoder.cc.o.d"
  "/root/repo/src/baselines/onehot.cc" "src/baselines/CMakeFiles/preqr_baselines.dir/onehot.cc.o" "gcc" "src/baselines/CMakeFiles/preqr_baselines.dir/onehot.cc.o.d"
  "/root/repo/src/baselines/sim.cc" "src/baselines/CMakeFiles/preqr_baselines.dir/sim.cc.o" "gcc" "src/baselines/CMakeFiles/preqr_baselines.dir/sim.cc.o.d"
  "/root/repo/src/baselines/tree2seq.cc" "src/baselines/CMakeFiles/preqr_baselines.dir/tree2seq.cc.o" "gcc" "src/baselines/CMakeFiles/preqr_baselines.dir/tree2seq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preqr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/preqr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/preqr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/preqr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/automaton/CMakeFiles/preqr_automaton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
