file(REMOVE_RECURSE
  "CMakeFiles/preqr_baselines.dir/feature_encoders.cc.o"
  "CMakeFiles/preqr_baselines.dir/feature_encoders.cc.o.d"
  "CMakeFiles/preqr_baselines.dir/lstm_encoder.cc.o"
  "CMakeFiles/preqr_baselines.dir/lstm_encoder.cc.o.d"
  "CMakeFiles/preqr_baselines.dir/onehot.cc.o"
  "CMakeFiles/preqr_baselines.dir/onehot.cc.o.d"
  "CMakeFiles/preqr_baselines.dir/sim.cc.o"
  "CMakeFiles/preqr_baselines.dir/sim.cc.o.d"
  "CMakeFiles/preqr_baselines.dir/tree2seq.cc.o"
  "CMakeFiles/preqr_baselines.dir/tree2seq.cc.o.d"
  "libpreqr_baselines.a"
  "libpreqr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
