# Empty dependencies file for preqr_baselines.
# This may be replaced when dependencies are built.
