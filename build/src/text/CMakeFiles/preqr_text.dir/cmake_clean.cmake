file(REMOVE_RECURSE
  "CMakeFiles/preqr_text.dir/tokenizer.cc.o"
  "CMakeFiles/preqr_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/preqr_text.dir/vocab.cc.o"
  "CMakeFiles/preqr_text.dir/vocab.cc.o.d"
  "libpreqr_text.a"
  "libpreqr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
