
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/preqr_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/preqr_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/text/CMakeFiles/preqr_text.dir/vocab.cc.o" "gcc" "src/text/CMakeFiles/preqr_text.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preqr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/preqr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/preqr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/automaton/CMakeFiles/preqr_automaton.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
