file(REMOVE_RECURSE
  "libpreqr_text.a"
)
