# Empty dependencies file for preqr_text.
# This may be replaced when dependencies are built.
