file(REMOVE_RECURSE
  "libpreqr_pg.a"
)
