# Empty dependencies file for preqr_pg.
# This may be replaced when dependencies are built.
