file(REMOVE_RECURSE
  "CMakeFiles/preqr_pg.dir/pg_estimator.cc.o"
  "CMakeFiles/preqr_pg.dir/pg_estimator.cc.o.d"
  "libpreqr_pg.a"
  "libpreqr_pg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_pg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
