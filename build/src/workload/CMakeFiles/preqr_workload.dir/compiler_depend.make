# Empty compiler generated dependencies file for preqr_workload.
# This may be replaced when dependencies are built.
