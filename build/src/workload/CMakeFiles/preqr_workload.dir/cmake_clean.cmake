file(REMOVE_RECURSE
  "CMakeFiles/preqr_workload.dir/ch.cc.o"
  "CMakeFiles/preqr_workload.dir/ch.cc.o.d"
  "CMakeFiles/preqr_workload.dir/clustering_workloads.cc.o"
  "CMakeFiles/preqr_workload.dir/clustering_workloads.cc.o.d"
  "CMakeFiles/preqr_workload.dir/imdb.cc.o"
  "CMakeFiles/preqr_workload.dir/imdb.cc.o.d"
  "CMakeFiles/preqr_workload.dir/query_gen.cc.o"
  "CMakeFiles/preqr_workload.dir/query_gen.cc.o.d"
  "CMakeFiles/preqr_workload.dir/rewrites.cc.o"
  "CMakeFiles/preqr_workload.dir/rewrites.cc.o.d"
  "CMakeFiles/preqr_workload.dir/sql2text.cc.o"
  "CMakeFiles/preqr_workload.dir/sql2text.cc.o.d"
  "libpreqr_workload.a"
  "libpreqr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
