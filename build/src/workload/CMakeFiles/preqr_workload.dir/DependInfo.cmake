
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/ch.cc" "src/workload/CMakeFiles/preqr_workload.dir/ch.cc.o" "gcc" "src/workload/CMakeFiles/preqr_workload.dir/ch.cc.o.d"
  "/root/repo/src/workload/clustering_workloads.cc" "src/workload/CMakeFiles/preqr_workload.dir/clustering_workloads.cc.o" "gcc" "src/workload/CMakeFiles/preqr_workload.dir/clustering_workloads.cc.o.d"
  "/root/repo/src/workload/imdb.cc" "src/workload/CMakeFiles/preqr_workload.dir/imdb.cc.o" "gcc" "src/workload/CMakeFiles/preqr_workload.dir/imdb.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/workload/CMakeFiles/preqr_workload.dir/query_gen.cc.o" "gcc" "src/workload/CMakeFiles/preqr_workload.dir/query_gen.cc.o.d"
  "/root/repo/src/workload/rewrites.cc" "src/workload/CMakeFiles/preqr_workload.dir/rewrites.cc.o" "gcc" "src/workload/CMakeFiles/preqr_workload.dir/rewrites.cc.o.d"
  "/root/repo/src/workload/sql2text.cc" "src/workload/CMakeFiles/preqr_workload.dir/sql2text.cc.o" "gcc" "src/workload/CMakeFiles/preqr_workload.dir/sql2text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preqr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/preqr_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/preqr_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
