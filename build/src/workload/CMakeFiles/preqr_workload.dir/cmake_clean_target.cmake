file(REMOVE_RECURSE
  "libpreqr_workload.a"
)
