# Empty dependencies file for preqr_neurocard.
# This may be replaced when dependencies are built.
