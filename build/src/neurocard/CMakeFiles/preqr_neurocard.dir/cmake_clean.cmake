file(REMOVE_RECURSE
  "CMakeFiles/preqr_neurocard.dir/neurocard.cc.o"
  "CMakeFiles/preqr_neurocard.dir/neurocard.cc.o.d"
  "libpreqr_neurocard.a"
  "libpreqr_neurocard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_neurocard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
