file(REMOVE_RECURSE
  "libpreqr_neurocard.a"
)
