file(REMOVE_RECURSE
  "CMakeFiles/preqr_automaton.dir/fa.cc.o"
  "CMakeFiles/preqr_automaton.dir/fa.cc.o.d"
  "CMakeFiles/preqr_automaton.dir/symbol.cc.o"
  "CMakeFiles/preqr_automaton.dir/symbol.cc.o.d"
  "CMakeFiles/preqr_automaton.dir/template_extractor.cc.o"
  "CMakeFiles/preqr_automaton.dir/template_extractor.cc.o.d"
  "libpreqr_automaton.a"
  "libpreqr_automaton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_automaton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
