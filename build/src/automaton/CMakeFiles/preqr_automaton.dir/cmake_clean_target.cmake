file(REMOVE_RECURSE
  "libpreqr_automaton.a"
)
