
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automaton/fa.cc" "src/automaton/CMakeFiles/preqr_automaton.dir/fa.cc.o" "gcc" "src/automaton/CMakeFiles/preqr_automaton.dir/fa.cc.o.d"
  "/root/repo/src/automaton/symbol.cc" "src/automaton/CMakeFiles/preqr_automaton.dir/symbol.cc.o" "gcc" "src/automaton/CMakeFiles/preqr_automaton.dir/symbol.cc.o.d"
  "/root/repo/src/automaton/template_extractor.cc" "src/automaton/CMakeFiles/preqr_automaton.dir/template_extractor.cc.o" "gcc" "src/automaton/CMakeFiles/preqr_automaton.dir/template_extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/preqr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/preqr_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
