# Empty dependencies file for preqr_automaton.
# This may be replaced when dependencies are built.
