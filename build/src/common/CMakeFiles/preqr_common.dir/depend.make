# Empty dependencies file for preqr_common.
# This may be replaced when dependencies are built.
