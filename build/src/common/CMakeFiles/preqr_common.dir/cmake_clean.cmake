file(REMOVE_RECURSE
  "CMakeFiles/preqr_common.dir/status.cc.o"
  "CMakeFiles/preqr_common.dir/status.cc.o.d"
  "CMakeFiles/preqr_common.dir/string_util.cc.o"
  "CMakeFiles/preqr_common.dir/string_util.cc.o.d"
  "libpreqr_common.a"
  "libpreqr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
