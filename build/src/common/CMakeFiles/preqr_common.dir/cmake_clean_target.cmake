file(REMOVE_RECURSE
  "libpreqr_common.a"
)
