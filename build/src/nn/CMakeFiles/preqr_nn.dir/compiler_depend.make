# Empty compiler generated dependencies file for preqr_nn.
# This may be replaced when dependencies are built.
