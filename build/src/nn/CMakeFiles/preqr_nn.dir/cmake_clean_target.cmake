file(REMOVE_RECURSE
  "libpreqr_nn.a"
)
