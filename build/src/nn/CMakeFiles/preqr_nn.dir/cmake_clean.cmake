file(REMOVE_RECURSE
  "CMakeFiles/preqr_nn.dir/module.cc.o"
  "CMakeFiles/preqr_nn.dir/module.cc.o.d"
  "CMakeFiles/preqr_nn.dir/ops.cc.o"
  "CMakeFiles/preqr_nn.dir/ops.cc.o.d"
  "CMakeFiles/preqr_nn.dir/optim.cc.o"
  "CMakeFiles/preqr_nn.dir/optim.cc.o.d"
  "CMakeFiles/preqr_nn.dir/serialize.cc.o"
  "CMakeFiles/preqr_nn.dir/serialize.cc.o.d"
  "CMakeFiles/preqr_nn.dir/tensor.cc.o"
  "CMakeFiles/preqr_nn.dir/tensor.cc.o.d"
  "libpreqr_nn.a"
  "libpreqr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
