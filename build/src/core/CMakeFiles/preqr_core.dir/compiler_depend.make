# Empty compiler generated dependencies file for preqr_core.
# This may be replaced when dependencies are built.
