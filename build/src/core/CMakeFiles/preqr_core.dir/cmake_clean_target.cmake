file(REMOVE_RECURSE
  "libpreqr_core.a"
)
