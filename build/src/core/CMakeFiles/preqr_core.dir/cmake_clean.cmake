file(REMOVE_RECURSE
  "CMakeFiles/preqr_core.dir/preqr_model.cc.o"
  "CMakeFiles/preqr_core.dir/preqr_model.cc.o.d"
  "CMakeFiles/preqr_core.dir/pretrain.cc.o"
  "CMakeFiles/preqr_core.dir/pretrain.cc.o.d"
  "libpreqr_core.a"
  "libpreqr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
