# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("nn")
subdirs("sql")
subdirs("automaton")
subdirs("schema")
subdirs("text")
subdirs("db")
subdirs("pg")
subdirs("workload")
subdirs("core")
subdirs("baselines")
subdirs("neurocard")
subdirs("eval")
subdirs("tasks")
