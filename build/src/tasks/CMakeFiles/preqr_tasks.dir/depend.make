# Empty dependencies file for preqr_tasks.
# This may be replaced when dependencies are built.
