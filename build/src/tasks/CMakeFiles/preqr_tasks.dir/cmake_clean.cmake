file(REMOVE_RECURSE
  "CMakeFiles/preqr_tasks.dir/clustering.cc.o"
  "CMakeFiles/preqr_tasks.dir/clustering.cc.o.d"
  "CMakeFiles/preqr_tasks.dir/correction.cc.o"
  "CMakeFiles/preqr_tasks.dir/correction.cc.o.d"
  "CMakeFiles/preqr_tasks.dir/estimator.cc.o"
  "CMakeFiles/preqr_tasks.dir/estimator.cc.o.d"
  "CMakeFiles/preqr_tasks.dir/preqr_encoder.cc.o"
  "CMakeFiles/preqr_tasks.dir/preqr_encoder.cc.o.d"
  "CMakeFiles/preqr_tasks.dir/sql2text.cc.o"
  "CMakeFiles/preqr_tasks.dir/sql2text.cc.o.d"
  "libpreqr_tasks.a"
  "libpreqr_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preqr_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
