file(REMOVE_RECURSE
  "libpreqr_tasks.a"
)
