// Regenerates Table 6: distribution of joins in the Synthetic / Scale /
// JOB-light workloads.
#include "bench/harness.h"

namespace preqr::bench {
namespace {

void Run() {
  PrintHeader("Table 6", "distribution of joins");
  db::Database imdb = workload::MakeImdbDatabase(42, DbScale());
  workload::ImdbQueryGenerator gen(imdb, 1);

  const auto print_dist = [](const char* name,
                             const std::vector<workload::BenchQuery>& qs) {
    int counts[5] = {0, 0, 0, 0, 0};
    for (const auto& q : qs) {
      if (q.num_joins >= 0 && q.num_joins <= 4) ++counts[q.num_joins];
    }
    std::printf("%-12s", name);
    for (int j = 0; j <= 4; ++j) std::printf(" %7d", counts[j]);
    std::printf(" %9zu\n", qs.size());
  };

  std::printf("%-12s %7s %7s %7s %7s %7s %9s\n", "workload", "0", "1", "2",
              "3", "4", "overall");
  print_dist("Synthetic", gen.Synthetic(Sized(1000, 100), 2));
  print_dist("Scale", gen.Scale(Sized(100, 10), 4));
  print_dist("JOB-light", gen.JobLight());
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
