// Closed-loop load harness for the serving front-end: sweeps client
// concurrency against a live loopback EncodeServer and reports, per load
// point, the latency distribution of admitted requests (p50/p95/p99),
// sustained throughput, shed rate, and cache-hit rate — the numbers that
// tell you where the box saturates and whether admission control keeps
// tail latency bounded past that point (it must: overload is shed with
// kResourceExhausted, not absorbed into the queue).
//
// Environment knobs:
//   LOAD_SECONDS        wall time per load point          (default 2)
//   LOAD_CLIENTS        peak closed-loop concurrency      (default 32)
//   LOAD_RING           service ring capacity             (default 16)
//   LOAD_TIMEOUT_US     per-request deadline, <0 = none   (default 500000)
//   LOAD_CORPUS         distinct SQL queries in the mix   (default 48)
//   LOAD_CACHE          embedding-cache capacity          (default 8)
//   TENANTS             hosted databases, round-robin     (default 1)
//   BENCH_SERVING_JSON  output path                (default BENCH_serving.json)
//
// TENANTS=N registers N TenantContexts (same IMDB catalog, independently
// seeded weights — the serving layer is what is being measured, and
// identical catalogs make the per-tenant rows comparable) and assigns
// client threads round-robin, so every load point reports both the
// aggregate and a per-tenant breakdown in BENCH_serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/pretrain.h"
#include "db/stats.h"
#include "nn/kernels_dispatch.h"
#include "serving/client.h"
#include "serving/encoder_service.h"
#include "serving/server.h"
#include "serving/tenant_registry.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace {

using preqr::StatusCode;

long EnvLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atol(v) : fallback;
}

std::string EnvStr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : fallback;
}

// Per-thread deterministic generator (xorshift64*) so runs are repeatable.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }
};

struct ThreadStats {
  std::vector<double> ok_latency_us;
  uint64_t ok = 0, hits = 0, shed = 0, deadline = 0, errors = 0;
};

// Client-side per-tenant slice of one load point (threads are assigned to
// tenants round-robin, so a load point below TENANTS clients legitimately
// leaves some tenants at zero).
struct TenantPoint {
  std::string tenant;
  uint64_t ok = 0, hits = 0, shed = 0, deadline = 0, errors = 0;
  double qps = 0.0;
};

struct LoadPoint {
  int clients = 0;
  double seconds = 0.0;
  uint64_t requests = 0, ok = 0, hits = 0, shed = 0, deadline = 0, errors = 0;
  double qps = 0.0, p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double shed_rate = 0.0, cache_hit_rate = 0.0;
  std::vector<TenantPoint> per_tenant;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main() {
  const long seconds = EnvLong("LOAD_SECONDS", 2);
  const long max_clients = EnvLong("LOAD_CLIENTS", 32);
  const long ring_capacity = EnvLong("LOAD_RING", 16);
  const long timeout_us = EnvLong("LOAD_TIMEOUT_US", 500000);
  const long corpus_size = EnvLong("LOAD_CORPUS", 48);
  const long cache_capacity = EnvLong("LOAD_CACHE", 8);
  const long tenants = std::max(1L, EnvLong("TENANTS", 1));
  const std::string json_path =
      EnvStr("BENCH_SERVING_JSON", "BENCH_serving.json");

  // Same small-model setup as the serving tests: the harness measures the
  // serving layer, not the model; a 32-dim encoder saturates a core fast.
  auto imdb = preqr::workload::MakeImdbDatabase(7, 0.02);
  preqr::db::StatsCollector collector;
  auto stats = collector.AnalyzeAll(imdb);
  preqr::workload::ImdbQueryGenerator gen(imdb, 3);
  std::vector<std::string> corpus;
  std::unordered_set<std::string> seen;
  for (const auto& q : gen.Synthetic(static_cast<int>(corpus_size), 2)) {
    if (seen.insert(q.sql).second) corpus.push_back(q.sql);
  }
  preqr::core::PreqrConfig config;
  config.d_model = 32;
  config.ffn_hidden = 64;

  preqr::serving::EncoderServiceOptions service_options;
  service_options.ring_capacity = static_cast<size_t>(ring_capacity);
  // A cache smaller than the corpus keeps the encoder the bottleneck: the
  // hot head of the skewed mix still hits, the tail forces real encodes —
  // otherwise the whole sweep degenerates into an LRU-lookup benchmark.
  // Each tenant owns its own partition of this size.
  service_options.cache_capacity = static_cast<size_t>(cache_capacity);
  // Each load thread is its own client: the fairness quota must not be
  // what sheds a uniform workload, only the ring bound should.
  service_options.per_client_quota = static_cast<size_t>(ring_capacity);
  service_options.batch_window = std::chrono::microseconds(200);
  preqr::serving::EncoderService service(service_options);
  preqr::serving::TenantRegistry registry(&service);
  std::vector<std::string> tenant_ids;
  for (long t = 0; t < tenants; ++t) {
    preqr::serving::TenantContext::Options tenant_options;
    tenant_options.catalog = imdb.catalog();
    tenant_options.stats = stats;
    tenant_options.corpus = corpus;
    tenant_options.config = config;
    tenant_options.seed = 17 + static_cast<uint64_t>(t);
    auto context =
        preqr::serving::TenantContext::Create(std::move(tenant_options));
    if (!context.ok()) {
      std::fprintf(stderr, "tenant context failed: %s\n",
                   context.status().ToString().c_str());
      return 1;
    }
    const std::string id = "t" + std::to_string(t);
    std::shared_ptr<preqr::serving::TenantContext> shared(
        std::move(context.value()));
    auto registered = registry.Register(id, shared);
    if (!registered.ok()) {
      std::fprintf(stderr, "tenant register failed: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    std::printf("tenant %s: %s\n", id.c_str(), shared->Describe().c_str());
    tenant_ids.push_back(id);
  }
  preqr::serving::ServerOptions server_options;
  server_options.max_connections = static_cast<int>(max_clients) + 4;
  preqr::serving::EncodeServer server(&service, server_options);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  std::vector<int> points;
  for (int c = 1; c <= max_clients; c *= 2) points.push_back(c);

  std::printf("serving load sweep: ring=%ld cache=%ld window=200us "
              "timeout=%ldus corpus=%zu model=d%d tenants=%ld\n",
              ring_capacity, cache_capacity, timeout_us, corpus.size(),
              config.d_model, tenants);
  std::printf("%8s %10s %10s %10s %10s %9s %9s %9s\n", "clients", "q/s",
              "p50_us", "p95_us", "p99_us", "shed%", "hit%", "dlx");

  std::vector<LoadPoint> results;
  for (int clients : points) {
    std::vector<ThreadStats> stats_per_thread(clients);
    std::vector<std::thread> workers;
    std::atomic<bool> stop{false};
    const auto t_start = std::chrono::steady_clock::now();
    for (int t = 0; t < clients; ++t) {
      workers.emplace_back([&, t] {
        preqr::serving::EncodeClient client;
        if (!client.Connect(server.port()).ok()) return;
        preqr::serving::WireRequestOptions options;
        options.timeout_us = timeout_us;
        options.client_id = "client-" + std::to_string(t);
        // Round-robin tenant assignment: thread t drives tenant t mod N.
        options.tenant_id = tenant_ids[static_cast<size_t>(t) %
                                       tenant_ids.size()];
        Rng rng(static_cast<uint64_t>(t) + 1);
        ThreadStats& s = stats_per_thread[t];
        while (!stop.load(std::memory_order_relaxed)) {
          // Skewed query mix (u^2): a hot head keeps the cache busy while
          // the tail keeps the encoder busy — both paths stay exercised.
          const double u = rng.Uniform();
          const size_t idx =
              static_cast<size_t>(u * u * static_cast<double>(corpus.size()));
          const auto q0 = std::chrono::steady_clock::now();
          auto r = client.Encode(corpus[std::min(idx, corpus.size() - 1)],
                                 options);
          const double us =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - q0)
                  .count() /
              1000.0;
          if (r.ok()) {
            ++s.ok;
            if (r.value().cache_hit) ++s.hits;
            s.ok_latency_us.push_back(us);
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            ++s.shed;
          } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
            ++s.deadline;
          } else {
            ++s.errors;
            if (!client.connected()) return;  // server went away
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    stop.store(true);
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t_start)
            .count() /
        1000.0;

    LoadPoint p;
    p.clients = clients;
    p.seconds = elapsed;
    std::vector<double> latencies;
    for (const auto& s : stats_per_thread) {
      p.ok += s.ok;
      p.hits += s.hits;
      p.shed += s.shed;
      p.deadline += s.deadline;
      p.errors += s.errors;
      latencies.insert(latencies.end(), s.ok_latency_us.begin(),
                       s.ok_latency_us.end());
    }
    p.requests = p.ok + p.shed + p.deadline + p.errors;
    std::sort(latencies.begin(), latencies.end());
    p.qps = elapsed > 0 ? static_cast<double>(p.ok) / elapsed : 0.0;
    p.p50_us = Percentile(latencies, 0.50);
    p.p95_us = Percentile(latencies, 0.95);
    p.p99_us = Percentile(latencies, 0.99);
    p.shed_rate =
        p.requests > 0
            ? static_cast<double>(p.shed) / static_cast<double>(p.requests)
            : 0.0;
    p.cache_hit_rate =
        p.ok > 0 ? static_cast<double>(p.hits) / static_cast<double>(p.ok)
                 : 0.0;
    // Per-tenant slice of the same run: thread t drove tenant t mod N.
    for (size_t ti = 0; ti < tenant_ids.size(); ++ti) {
      TenantPoint tp;
      tp.tenant = tenant_ids[ti];
      for (size_t t = ti; t < stats_per_thread.size();
           t += tenant_ids.size()) {
        const ThreadStats& s = stats_per_thread[t];
        tp.ok += s.ok;
        tp.hits += s.hits;
        tp.shed += s.shed;
        tp.deadline += s.deadline;
        tp.errors += s.errors;
      }
      tp.qps = elapsed > 0 ? static_cast<double>(tp.ok) / elapsed : 0.0;
      p.per_tenant.push_back(tp);
    }
    results.push_back(p);
    std::printf("%8d %10.1f %10.0f %10.0f %10.0f %8.1f%% %8.1f%% %9llu\n",
                p.clients, p.qps, p.p50_us, p.p95_us, p.p99_us,
                100.0 * p.shed_rate, 100.0 * p.cache_hit_rate,
                static_cast<unsigned long long>(p.deadline));
  }
  server.Stop();

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"serving_load\",\n";
  out << "  \"kernel_impl\": \"" << preqr::nn::kernels::ActiveImplName()
      << "\",\n";
  out << "  \"ring_capacity\": " << ring_capacity << ",\n";
  out << "  \"timeout_us\": " << timeout_us << ",\n";
  out << "  \"corpus\": " << corpus.size() << ",\n";
  out << "  \"tenants\": " << tenants << ",\n";
  out << "  \"points\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LoadPoint& p = results[i];
    out << "    {\"clients\": " << p.clients << ", \"seconds\": " << p.seconds
        << ", \"requests\": " << p.requests << ", \"ok\": " << p.ok
        << ", \"shed\": " << p.shed << ", \"deadline_exceeded\": " << p.deadline
        << ", \"errors\": " << p.errors << ", \"qps\": " << p.qps
        << ", \"p50_us\": " << p.p50_us << ", \"p95_us\": " << p.p95_us
        << ", \"p99_us\": " << p.p99_us << ", \"shed_rate\": " << p.shed_rate
        << ", \"cache_hit_rate\": " << p.cache_hit_rate
        << ", \"per_tenant\": [";
    for (size_t ti = 0; ti < p.per_tenant.size(); ++ti) {
      const TenantPoint& tp = p.per_tenant[ti];
      out << "{\"tenant\": \"" << tp.tenant << "\", \"ok\": " << tp.ok
          << ", \"hits\": " << tp.hits << ", \"shed\": " << tp.shed
          << ", \"deadline_exceeded\": " << tp.deadline
          << ", \"errors\": " << tp.errors << ", \"qps\": " << tp.qps << "}"
          << (ti + 1 < p.per_tenant.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();
  std::printf("wrote %s (%zu load points)\n", json_path.c_str(),
              results.size());

  // Final server-side picture: queue depth back to zero, sheds accounted,
  // every tenant's cache partition populated independently.
  const auto& m = service.metrics();
  std::printf("server: requests=%llu sheds=%llu deadline_drops=%llu "
              "errors=%llu tenant_not_found=%llu\n",
              static_cast<unsigned long long>(m.requests.value()),
              static_cast<unsigned long long>(m.ShedTotal()),
              static_cast<unsigned long long>(m.deadline_dropped.value() +
                                              m.deadline_rejected.value()),
              static_cast<unsigned long long>(m.errors.value()),
              static_cast<unsigned long long>(m.tenant_not_found.value()));
  for (const auto& id : tenant_ids) {
    std::printf("server: tenant %s cached_embeddings=%zu\n", id.c_str(),
                service.cached_embeddings(id));
  }
  return 0;
}
