// Closes the paper's loop: each cardinality estimator (true counts, PG
// statistics, PreQR) drives the DP join-order planner, and every chosen
// order is then *executed* so plans are scored by real work units, not by
// the estimator's own opinion. The true-count estimator's plan is the
// executed-cost optimum among left-deep orders (same cost formula, exact
// cardinalities), so each estimator's plan-quality ratio is
// executed(chosen) / executed(optimal) >= 1. PG's independence assumption
// misestimates the correlated intermediates and picks provably worse
// orders; PreQR's learned estimates should land closer to optimal.
#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/feature_encoders.h"
#include "db/executor.h"
#include "pg/pg_estimator.h"
#include "planner/cardinality.h"
#include "planner/join_planner.h"
#include "tasks/estimator.h"
#include "tasks/planner_adapter.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

struct EstimatorRun {
  std::string name;
  double ratio_sum = 0;
  double ratio_max = 0;
  double executed_units = 0;
  int picked_optimal = 0;
  int planned = 0;
};

void Run() {
  PrintHeader("Planner",
              "cost-based join ordering per estimator (closing the loop)");
  EstimationSetup s = BuildEstimationSetup(BenchConfig());
  db::Executor exec(s.imdb);
  pg::PgEstimator pg_est(s.imdb);

  // PreQR estimator head on the 0-2-join synthetic plus the multi-join
  // training workload (Table 8's recipe); the mix matters because the
  // planner also asks about induced sub-queries down to single tables.
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  tasks::PreqrEncoder preqr_enc(s.model.get());
  baselines::ConcatEncoder preqr_bm(&preqr_enc, &bitmap);
  tasks::EstimatorModel::Options popt;
  popt.epochs = Sized(8, 2);
  popt.hidden = 128;
  popt.lr = 7e-4f;
  tasks::EstimatorModel preqr_model(&preqr_bm, popt);
  {
    std::vector<std::string> sqls = Sqls(s.synthetic_train);
    std::vector<double> cards = Cards(s.synthetic_train);
    const auto jl_sqls = Sqls(s.joblight_train);
    const auto jl_cards = Cards(s.joblight_train);
    sqls.insert(sqls.end(), jl_sqls.begin(), jl_sqls.end());
    cards.insert(cards.end(), jl_cards.begin(), jl_cards.end());
    preqr_model.Fit(sqls, cards);
  }

  planner::TrueCardinalityEstimator true_est(s.imdb);
  planner::PgCardinalityEstimator pg_card(s.imdb, pg_est);
  auto preqr_card =
      tasks::MakePlannerEstimator(s.imdb, "preqr", &preqr_model);
  planner::CardinalityEstimator* estimators[] = {&true_est, &pg_card,
                                                 &preqr_card};

  // The correlated multi-join planning workload: anchored predicates make
  // intermediate sizes diverge from the independence assumption.
  workload::ImdbQueryGenerator gen(s.imdb, 99);
  std::vector<workload::BenchQuery> queries;
  for (const auto& q : gen.Synthetic(Sized(120, 40), 4)) {
    if (q.stmt.tables.size() >= 3) queries.push_back(q);
  }
  for (const auto& q : gen.JobLightTrain(Sized(80, 25))) {
    if (q.stmt.tables.size() >= 3) queries.push_back(q);
  }
  const size_t max_queries = static_cast<size_t>(Sized(40, 12));
  if (queries.size() > max_queries) queries.resize(max_queries);

  EstimatorRun runs[3] = {{"true"}, {"pg"}, {"preqr"}};
  int pg_worse_than_true = 0;
  const db::CostModel cm;

  std::printf("\nplanning %zu multi-join queries (3+ tables)\n",
              queries.size());
  for (const auto& q : queries) {
    double executed[3] = {0, 0, 0};
    bool ok_all = true;
    for (int e = 0; e < 3 && ok_all; ++e) {
      auto choice =
          planner::PlanJoinOrder(s.imdb, q.stmt, *estimators[e], cm);
      if (!choice.ok()) {
        ok_all = false;
        break;
      }
      auto res = exec.ExecuteOrder(q.stmt, choice.value().order, cm);
      if (!res.ok()) {
        ok_all = false;
        break;
      }
      executed[e] = res.value().cost;
    }
    if (!ok_all) continue;
    for (int e = 0; e < 3; ++e) {
      const double ratio = executed[e] / executed[0];
      runs[e].ratio_sum += ratio;
      runs[e].ratio_max = std::max(runs[e].ratio_max, ratio);
      runs[e].executed_units += executed[e];
      if (ratio <= 1.0 + 1e-9) ++runs[e].picked_optimal;
      ++runs[e].planned;
    }
    if (executed[1] > executed[0] * (1.0 + 1e-9)) ++pg_worse_than_true;
  }

  std::printf("\n%-10s %12s %12s %16s %18s\n", "estimator", "mean_ratio",
              "max_ratio", "picked_optimal", "executed_units");
  for (const auto& r : runs) {
    std::printf("%-10s %12.4f %12.4f %13d/%-2d %18.0f\n", r.name.c_str(),
                r.ratio_sum / std::max(1, r.planned), r.ratio_max,
                r.picked_optimal, r.planned, r.executed_units);
  }
  std::printf("\nPG picked a strictly worse plan than true on %d/%d "
              "queries\n",
              pg_worse_than_true, runs[0].planned);

  const char* path = std::getenv("PREQR_BENCH_PLANNER_JSON");
  if (path == nullptr) path = "BENCH_planner.json";
  FILE* f = std::fopen(path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"scale\": %.3f,\n  \"queries\": %d,\n", DbScale(),
                 runs[0].planned);
    std::fprintf(f, "  \"estimators\": [\n");
    for (int e = 0; e < 3; ++e) {
      const EstimatorRun& r = runs[e];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"mean_ratio\": %.6f, "
                   "\"max_ratio\": %.6f, \"picked_optimal\": %d, "
                   "\"executed_units\": %.1f}%s\n",
                   r.name.c_str(), r.ratio_sum / std::max(1, r.planned),
                   r.ratio_max, r.picked_optimal, r.executed_units,
                   e + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"pg_worse_than_true\": %d\n}\n",
                 pg_worse_than_true);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
