// Regenerates Table 9: cost-estimation q-errors on the numeric workloads
// (JOB-light, Synthetic, Scale) for PG / MSCN(one-hot) / LSTM / PreQR.
// Ground-truth cost is the executor's deterministic work-unit accounting.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "baselines/lstm_encoder.h"
#include "baselines/onehot.h"
#include "pg/pg_estimator.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

struct WorkloadEval {
  const char* name;
  const std::vector<workload::BenchQuery>* train;
  const std::vector<workload::BenchQuery>* eval;
};

void Run() {
  PrintHeader("Table 9", "cost errors on numeric workloads");
  EstimationSetup s = BuildEstimationSetup(BenchConfig());
  pg::PgEstimator pg_est(s.imdb);
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);

  const WorkloadEval workloads[] = {
      {"JOB-light", &s.joblight_train, &s.joblight_eval},
      {"Synthetic", &s.synthetic_train, &s.synthetic_eval},
      {"Scale", &s.synthetic_train, &s.scale_eval},
  };

  const std::vector<workload::BenchQuery>* last_train = nullptr;
  std::unique_ptr<baselines::OneHotEncoder> onehot;
  std::unique_ptr<baselines::LstmQueryEncoder> lstm;
  std::unique_ptr<baselines::ConcatEncoder> lstm_bm, preqr_bm, preqr_bm_q;
  std::unique_ptr<tasks::PreqrEncoder> preqr_enc, preqr_enc_q;
  std::unique_ptr<tasks::EstimatorModel> mscn_model, lstm_model, preqr_model,
      preqr_model_q;

  for (const auto& wl : workloads) {
    if (wl.train != last_train) {
      last_train = wl.train;
      const auto train_sqls = Sqls(*wl.train);
      const auto train_costs = Costs(*wl.train);
      onehot = std::make_unique<baselines::OneHotEncoder>(s.imdb, &sampler);
      tasks::EstimatorModel::Options mopt;
      mopt.epochs = Sized(25, 6);
      mopt.hidden = 96;
      mscn_model = std::make_unique<tasks::EstimatorModel>(onehot.get(), mopt);
      mscn_model->Fit(train_sqls, train_costs);

      lstm = std::make_unique<baselines::LstmQueryEncoder>(32, 24, 3);
      lstm->BuildVocab(train_sqls);
      lstm_bm = std::make_unique<baselines::ConcatEncoder>(lstm.get(), &bitmap);
      tasks::EstimatorModel::Options lopt;
      lopt.epochs = Sized(5, 2);
      lopt.hidden = 96;
      lstm_model =
          std::make_unique<tasks::EstimatorModel>(lstm_bm.get(), lopt);
      lstm_model->Fit(train_sqls, train_costs);

      preqr_enc = std::make_unique<tasks::PreqrEncoder>(s.model.get());
      preqr_bm =
          std::make_unique<baselines::ConcatEncoder>(preqr_enc.get(), &bitmap);
      tasks::EstimatorModel::Options popt;
      popt.epochs = Sized(8, 2);
      popt.hidden = 128;
      popt.lr = 7e-4f;
      preqr_model =
          std::make_unique<tasks::EstimatorModel>(preqr_bm.get(), popt);
      preqr_model->Fit(train_sqls, train_costs);

      // Int8 quantized encode path (same frozen weights, int8 GEMM): its
      // row quantifies the quantization cost on cost estimation.
      tasks::PreqrEncoder::Options qopt;
      qopt.use_int8 = true;
      preqr_enc_q =
          std::make_unique<tasks::PreqrEncoder>(s.model.get(), qopt);
      preqr_bm_q = std::make_unique<baselines::ConcatEncoder>(
          preqr_enc_q.get(), &bitmap);
      preqr_model_q =
          std::make_unique<tasks::EstimatorModel>(preqr_bm_q.get(), popt);
      preqr_model_q->Fit(train_sqls, train_costs);
    }

    const auto eval_sqls = Sqls(*wl.eval);
    const auto truths = Costs(*wl.eval);
    PrintQErrorHeader(wl.name);
    {
      std::vector<double> est;
      for (const auto& q : *wl.eval) {
        est.push_back(pg_est.EstimateCost(q.stmt));
      }
      PrintQErrorRow("PGCost", eval::ComputeQErrors(truths, est));
    }
    PrintQErrorRow("MSCNCost",
                   eval::ComputeQErrors(truths,
                                        mscn_model->PredictAll(eval_sqls)));
    PrintQErrorRow("LSTMCost",
                   eval::ComputeQErrors(truths,
                                        lstm_model->PredictAll(eval_sqls)));
    const eval::QErrorStats preqr_q_errors =
        eval::ComputeQErrors(truths, preqr_model->PredictAll(eval_sqls));
    PrintQErrorRow("PreQRCost", preqr_q_errors);
    const eval::QErrorStats int8_q_errors =
        eval::ComputeQErrors(truths, preqr_model_q->PredictAll(eval_sqls));
    PrintQErrorRow("PreQRCost-int8", int8_q_errors);
    const double bound = 1.5 * preqr_q_errors.median + 0.5;
    std::printf("%-18s median %.2f vs float %.2f (bound %.2f): %s\n",
                "int8-drift-check", int8_q_errors.median,
                preqr_q_errors.median, bound,
                int8_q_errors.median <= bound ? "PASS" : "FAIL");
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
