// Regenerates Table 8: cardinality-estimation q-errors on the numeric
// workloads (JOB-light, Synthetic, Scale) for PG / MSCN(one-hot) / LSTM /
// PreQR / NeuroCard / NeuroCard+PreQR. Synthetic and Scale share the
// 0-2-join training set (Scale probes join-count generalization); JOB-light
// uses the multi-join training workload.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "baselines/lstm_encoder.h"
#include "baselines/onehot.h"
#include "neurocard/neurocard.h"
#include "pg/pg_estimator.h"
#include "tasks/correction.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

struct WorkloadEval {
  const char* name;
  const std::vector<workload::BenchQuery>* train;
  const std::vector<workload::BenchQuery>* eval;
};

void Run() {
  PrintHeader("Table 8", "cardinality errors on numeric workloads");
  EstimationSetup s = BuildEstimationSetup(BenchConfig());
  pg::PgEstimator pg_est(s.imdb);
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  neurocard::NeuroCard nc(s.imdb, "title",
                          Sized(static_cast<int>(0.025 * 12000 * DbScale()) +
                                    60,
                                40));

  const WorkloadEval workloads[] = {
      {"JOB-light", &s.joblight_train, &s.joblight_eval},
      {"Synthetic", &s.synthetic_train, &s.synthetic_eval},
      {"Scale", &s.synthetic_train, &s.scale_eval},
  };

  // Train each learned model once per distinct training set.
  const std::vector<workload::BenchQuery>* last_train = nullptr;
  std::unique_ptr<baselines::OneHotEncoder> onehot;
  std::unique_ptr<baselines::LstmQueryEncoder> lstm;
  std::unique_ptr<baselines::ConcatEncoder> lstm_bm, preqr_bm, preqr_bm_q;
  std::unique_ptr<tasks::PreqrEncoder> preqr_enc, preqr_enc_q;
  std::unique_ptr<tasks::EstimatorModel> mscn_model, lstm_model, preqr_model,
      preqr_model_q;
  std::unique_ptr<tasks::CorrectionModel> nc_correction;

  for (const auto& wl : workloads) {
    if (wl.train != last_train) {
      last_train = wl.train;
      const auto train_sqls = Sqls(*wl.train);
      const auto train_cards = Cards(*wl.train);
      onehot = std::make_unique<baselines::OneHotEncoder>(s.imdb, &sampler);
      tasks::EstimatorModel::Options mopt;
      mopt.epochs = Sized(25, 6);
      mopt.hidden = 96;
      mscn_model = std::make_unique<tasks::EstimatorModel>(onehot.get(), mopt);
      mscn_model->Fit(train_sqls, train_cards);

      lstm = std::make_unique<baselines::LstmQueryEncoder>(32, 24, 3);
      lstm->BuildVocab(train_sqls);
      lstm_bm = std::make_unique<baselines::ConcatEncoder>(lstm.get(), &bitmap);
      tasks::EstimatorModel::Options lopt;
      lopt.epochs = Sized(5, 2);
      lopt.hidden = 96;
      lstm_model =
          std::make_unique<tasks::EstimatorModel>(lstm_bm.get(), lopt);
      lstm_model->Fit(train_sqls, train_cards);

      preqr_enc = std::make_unique<tasks::PreqrEncoder>(s.model.get());
      preqr_bm =
          std::make_unique<baselines::ConcatEncoder>(preqr_enc.get(), &bitmap);
      tasks::EstimatorModel::Options popt;
      popt.epochs = Sized(8, 2);
      popt.hidden = 128;
      popt.lr = 7e-4f;
      preqr_model =
          std::make_unique<tasks::EstimatorModel>(preqr_bm.get(), popt);
      preqr_model->Fit(train_sqls, train_cards);

      // The int8 quantized encode path end to end: same frozen PreQR
      // weights, embeddings produced by the int8 GEMM, same estimator
      // head recipe. Its q-error row quantifies what quantization costs
      // the downstream task (the ISSUE's drift bound is checked below).
      tasks::PreqrEncoder::Options qopt;
      qopt.use_int8 = true;
      preqr_enc_q =
          std::make_unique<tasks::PreqrEncoder>(s.model.get(), qopt);
      preqr_bm_q = std::make_unique<baselines::ConcatEncoder>(
          preqr_enc_q.get(), &bitmap);
      preqr_model_q =
          std::make_unique<tasks::EstimatorModel>(preqr_bm_q.get(), popt);
      preqr_model_q->Fit(train_sqls, train_cards);

      // NeuroCard correction model on the same training queries.
      std::vector<double> nc_base;
      for (const auto& q : *wl.train) {
        auto r = nc.EstimateCardinality(q.stmt);
        nc_base.push_back(r.ok() ? r.value() : 1.0);
      }
      tasks::EstimatorModel::Options copt;
      copt.epochs = Sized(6, 2);
      copt.hidden = 96;
      nc_correction =
          std::make_unique<tasks::CorrectionModel>(preqr_bm.get(), copt);
      nc_correction->Fit(train_sqls, nc_base, train_cards);
    }

    const auto eval_sqls = Sqls(*wl.eval);
    const auto truths = Cards(*wl.eval);
    PrintQErrorHeader(wl.name);
    {
      std::vector<double> est;
      for (const auto& q : *wl.eval) {
        est.push_back(pg_est.EstimateCardinality(q.stmt));
      }
      PrintQErrorRow("PGCard", eval::ComputeQErrors(truths, est));
    }
    PrintQErrorRow("MSCNCard",
                   eval::ComputeQErrors(truths, mscn_model->PredictAll(
                                                    eval_sqls)));
    PrintQErrorRow("LSTMCard",
                   eval::ComputeQErrors(truths, lstm_model->PredictAll(
                                                    eval_sqls)));
    const eval::QErrorStats preqr_q_errors =
        eval::ComputeQErrors(truths, preqr_model->PredictAll(eval_sqls));
    PrintQErrorRow("PreQRCard", preqr_q_errors);
    const eval::QErrorStats int8_q_errors =
        eval::ComputeQErrors(truths, preqr_model_q->PredictAll(eval_sqls));
    PrintQErrorRow("PreQRCard-int8", int8_q_errors);
    // Quantization must not wreck the estimator: the int8 median q-error
    // stays within 1.5x of float (plus slack for near-1.0 medians).
    const double bound = 1.5 * preqr_q_errors.median + 0.5;
    std::printf("%-18s median %.2f vs float %.2f (bound %.2f): %s\n",
                "int8-drift-check", int8_q_errors.median,
                preqr_q_errors.median, bound,
                int8_q_errors.median <= bound ? "PASS" : "FAIL");
    {
      std::vector<double> est, corrected;
      for (const auto& q : *wl.eval) {
        auto r = nc.EstimateCardinality(q.stmt);
        const double base = r.ok() ? r.value() : 1.0;
        est.push_back(base);
        corrected.push_back(nc_correction->Correct(q.sql, base));
      }
      PrintQErrorRow("NeuroCard", eval::ComputeQErrors(truths, est));
      PrintQErrorRow("NeuroCard+PreQR",
                     eval::ComputeQErrors(truths, corrected));
    }
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
