// Regenerates Table 13: ablation over model size (#L layers, #H hidden,
// #A attention heads) on the cost-estimation task. The paper's finding:
// larger models are monotonically better, with diminishing returns.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

struct SizeConfig {
  int layers;
  int hidden;
  int heads;
};

void Run() {
  PrintHeader("Table 13", "ablation over model size on cost estimation");
  EstimationSetup s =
      BuildEstimationSetup(BenchConfig(), /*pretrain_epochs=*/0);
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  std::vector<std::string> corpus = Sqls(s.synthetic_train);
  {
    auto jl = Sqls(s.joblight_train);
    corpus.insert(corpus.end(), jl.begin(), jl.end());
  }
  if (corpus.size() > Sized(250u, 50u)) corpus.resize(Sized(250, 50));

  // Paper sweeps {2,4,6,12} x 256 x {4,8}; scaled down proportionally.
  const SizeConfig configs[] = {
      {1, 32, 2},
      {2, 48, 4},
      {2, 64, 4},
      {3, 96, 4},
  };

  std::printf("%4s %4s %4s   %10s %10s %10s\n", "#L", "#H", "#A", "JOB-light",
              "Synthetic", "Scale");
  for (const auto& size : configs) {
    core::PreqrConfig config;
    config.num_layers = size.layers;
    config.d_model = size.hidden;
    config.num_heads = size.heads;
    config.ffn_hidden = 2 * size.hidden;
    core::PreqrModel model(config, s.tokenizer.get(), &s.fa, &s.graph, 5);
    core::Pretrainer::Options popt;
    popt.epochs = Sized(2, 1);
    core::Pretrainer pretrainer(model, popt);
    pretrainer.Train(corpus);
    tasks::PreqrEncoder enc(&model);
    baselines::ConcatEncoder enc_bm(&enc, &bitmap);

    double means[3];
    struct Eval {
      const std::vector<workload::BenchQuery>* train;
      const std::vector<workload::BenchQuery>* eval;
    };
    const Eval evals[] = {
        {&s.joblight_train, &s.joblight_eval},
        {&s.synthetic_train, &s.synthetic_eval},
        {&s.synthetic_train, &s.scale_eval},
    };
    for (int e = 0; e < 3; ++e) {
      std::vector<workload::BenchQuery> capped(*evals[e].train);
      if (capped.size() > 250) capped.resize(250);
      tasks::EstimatorModel::Options opt;
      opt.epochs = Sized(5, 2);
      opt.hidden = 96;
      opt.lr = 7e-4f;
      tasks::EstimatorModel est(&enc_bm, opt);
      est.Fit(Sqls(capped), Costs(capped));
      means[e] = eval::ComputeQErrors(Costs(*evals[e].eval),
                                      est.PredictAll(Sqls(*evals[e].eval)))
                     .mean;
    }
    std::printf("%4d %4d %4d   %10.2f %10.2f %10.2f\n", size.layers,
                size.hidden, size.heads, means[0], means[1], means[2]);
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
