// Regenerates Table 7: overall performance under the same training
// settings — query clustering (BetaCV on the three log workloads + NDCG on
// the CH similarity workload), and summary rows for the estimation and
// SQL-to-Text tasks (the full per-percentile estimation tables are in the
// Table 8/9 benches; the full generation comparison is in this binary).
#include "bench/clustering_harness.h"

#include "baselines/tree2seq.h"
#include "eval/metrics.h"
#include "workload/ch.h"
#include "workload/clustering_workloads.h"
#include "workload/sql2text.h"

namespace preqr::bench {
namespace {

void RunClustering() {
  std::printf("\n[query clustering: BetaCV (smaller is better) / NDCG]\n");
  const workload::ClusteringWorkload workloads[] = {
      workload::MakeIitBombayWorkload(),
      workload::MakeUbExamWorkload(),
      workload::MakePocketDataWorkload(),
  };
  db::Database ch = workload::MakeChDatabase(42, DbScale());
  auto ch_wl = workload::MakeChSimilarityWorkload(ch, 7, Sized(12, 6));

  // method -> column values.
  std::vector<std::string> names;
  std::vector<std::vector<double>> betacv(3);
  std::vector<double> ndcg;
  for (int w = 0; w < 3; ++w) {
    auto methods = AllMethodDistances(workloads[w].queries,
                                      workloads[w].catalog, nullptr, 9 + w);
    if (w == 0) {
      for (const auto& m : methods) names.push_back(m.method);
    }
    for (const auto& m : methods) {
      betacv[w].push_back(eval::BetaCV(m.distance, workloads[w].labels));
    }
  }
  {
    auto methods =
        AllMethodDistances(ch_wl.queries, ch.catalog(), &ch, 19);
    for (const auto& m : methods) {
      ndcg.push_back(eval::MeanNdcg(tasks::ToSimilarity(m.distance),
                                    ch_wl.true_similarity, 10));
    }
  }
  std::printf("%-14s %12s %12s %12s %10s\n", "method", "IIT Bombay",
              "UB Exam", "PocketData", "NDCG (CH)");
  for (size_t m = 0; m < names.size(); ++m) {
    std::printf("%-14s %12.3f %12.3f %12.3f %10.3f\n", names[m].c_str(),
                betacv[0][m], betacv[1][m], betacv[2][m], ndcg[m]);
  }
}

void RunGeneration() {
  std::printf("\n[SQL-to-Text generation: BLEU (larger is better)]\n");
  struct Dataset {
    const char* name;
    std::vector<workload::TextPair> pairs;
  };
  Dataset datasets[] = {
      {"WikiSQL", workload::MakeWikiSqlDataset(Sized(200, 60), 31)},
      {"StackOverflow",
       workload::MakeStackOverflowDataset(Sized(200, 60), 32)},
  };
  std::printf("%-14s %12s %14s\n", "method", "WikiSQL", "StackOverflow");

  struct MethodRow {
    std::string name;
    double bleu[2];
  };
  std::vector<MethodRow> rows;
  for (int d = 0; d < 2; ++d) {
    auto& pairs = datasets[d].pairs;
    const size_t train_n = pairs.size() * 8 / 10;
    std::vector<workload::TextPair> train(pairs.begin(),
                                          pairs.begin() + train_n);
    std::vector<workload::TextPair> eval_set(pairs.begin() + train_n,
                                             pairs.end());
    std::vector<std::string> train_sqls;
    for (const auto& p : train) train_sqls.push_back(p.sql);

    tasks::Sql2TextModel::Options opt;
    opt.epochs = Sized(4, 1);

    // Seq2Seq (LSTM encoder).
    {
      baselines::LstmQueryEncoder lstm(32, 24, 3);
      lstm.BuildVocab(train_sqls);
      tasks::Sql2TextModel model(&lstm, opt);
      model.Fit(train);
      if (d == 0) rows.push_back({"Seq2Seq", {0, 0}});
      rows[0].bleu[d] = model.EvalBleu(eval_set);
    }
    // Tree2Seq.
    {
      baselines::Tree2SeqEncoder tree(32, 4);
      tasks::Sql2TextModel model(&tree, opt);
      model.Fit(train);
      if (d == 0) rows.push_back({"Tree2Seq", {0, 0}});
      rows[1].bleu[d] = model.EvalBleu(eval_set);
    }
    // Graph2Seq.
    {
      baselines::Graph2SeqEncoder g2s(32, 5);
      tasks::Sql2TextModel model(&g2s, opt);
      model.Fit(train);
      if (d == 0) rows.push_back({"Graph2Seq", {0, 0}});
      rows[2].bleu[d] = model.EvalBleu(eval_set);
    }
    // PreQR2Seq: PreQR encoder pre-trained on this dataset's SQL side.
    {
      // Minimal web-table catalog: tables/columns appearing in queries are
      // resolved lazily by the tokenizer; an empty catalog suffices for
      // generation (schema tokens fall back to sub-words).
      sql::Catalog catalog;
      std::vector<db::TableStats> stats;
      auto tokenizer =
          std::make_unique<text::SqlTokenizer>(catalog, stats, 8);
      automaton::TemplateExtractor extractor(0.2);
      automaton::Automaton fa = extractor.BuildAutomaton(train_sqls);
      schema::SchemaGraph graph = schema::SchemaGraph::Build(catalog);
      core::PreqrConfig config;
      config.d_model = Sized(48, 32);
      config.ffn_hidden = 2 * config.d_model;
      config.use_schema = false;  // no schema graph for web tables
      core::PreqrModel model(config, tokenizer.get(), &fa, &graph, 6);
      core::Pretrainer::Options popt;
      popt.epochs = Sized(3, 1);
      core::Pretrainer pretrainer(model, popt);
      pretrainer.Train(train_sqls);
      tasks::PreqrEncoder encoder(&model);
      tasks::Sql2TextModel gen_model(&encoder, opt);
      gen_model.Fit(train);
      if (d == 0) rows.push_back({"PreQR2Seq", {0, 0}});
      rows[3].bleu[d] = gen_model.EvalBleu(eval_set);
    }
  }
  for (const auto& row : rows) {
    std::printf("%-14s %12.1f %14.1f\n", row.name.c_str(),
                100.0 * row.bleu[0], 100.0 * row.bleu[1]);
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::PrintHeader("Table 7",
                            "overall performance (clustering + generation; "
                            "estimation details in Table 8/9 benches)");
  preqr::bench::RunClustering();
  preqr::bench::RunGeneration();
  return 0;
}
