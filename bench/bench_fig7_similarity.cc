// Regenerates Figure 7: (a) similarity-ranking NDCG per method on the CH
// workload; (b) mean PreQR distance per query-pair category (logically
// equivalent / same template / irrelevant) — the paper's evidence that
// PreQR places equivalent rewrites closest, template-mates at a proper
// middle distance, and irrelevant queries farthest.
#include "bench/clustering_harness.h"

#include "eval/metrics.h"
#include "workload/ch.h"

namespace preqr::bench {
namespace {

void Run() {
  PrintHeader("Figure 7", "query similarity validation on the CH workload");
  db::Database ch = workload::MakeChDatabase(42, DbScale());
  auto wl = workload::MakeChSimilarityWorkload(ch, 7, Sized(12, 6));
  auto methods = AllMethodDistances(wl.queries, ch.catalog(), &ch, 23);

  std::printf("\n[(a) similarity ranking validation: NDCG@10]\n");
  std::printf("%-14s %8s\n", "method", "NDCG");
  for (const auto& m : methods) {
    std::printf("%-14s %8.3f\n", m.method.c_str(),
                eval::MeanNdcg(tasks::ToSimilarity(m.distance),
                               wl.true_similarity, 10));
  }

  std::printf("\n[(b) mean pairwise distance per query-group category]\n");
  std::printf("%-14s %12s %14s %12s\n", "method", "equivalent",
              "same-template", "irrelevant");
  for (const auto& m : methods) {
    double sums[3] = {0, 0, 0};
    int counts[3] = {0, 0, 0};
    const size_t n = wl.queries.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (wl.family[i] != wl.family[j]) continue;
        int bucket;
        if (wl.category[i] == 0 && wl.category[j] == 0) {
          bucket = 0;  // both equivalent to the base
        } else if (wl.category[i] == 2 || wl.category[j] == 2) {
          bucket = 2;  // involves the irrelevant member
        } else {
          bucket = 1;  // same template
        }
        sums[bucket] += m.distance[i][j];
        ++counts[bucket];
      }
    }
    std::printf("%-14s %12.3f %14.3f %12.3f\n", m.method.c_str(),
                counts[0] ? sums[0] / counts[0] : 0,
                counts[1] ? sums[1] / counts[1] : 0,
                counts[2] ? sums[2] / counts[2] : 0);
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
