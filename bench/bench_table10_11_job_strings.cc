// Regenerates Tables 10 and 11: cardinality and cost q-errors on the JOB
// workload with string predicates (LIKE / IN / equality on satellite
// tables, 4+ joins) for PG / LSTM / PreQR. MSCN is excluded (no string
// support) and NeuroCard is excluded (per the paper) — matching Section
// 4.5.2's comparison set. Models train on 90% of a multi-join string
// workload and evaluate on the held-out 10%.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "baselines/lstm_encoder.h"
#include "pg/pg_estimator.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

void Run() {
  PrintHeader("Tables 10+11", "errors on the JOB workload (with strings)");
  EstimationSetup s = BuildEstimationSetup(BenchConfig());
  workload::ImdbQueryGenerator gen(s.imdb, 77);
  auto all = gen.JobStrings(Sized(300, 60), 4, 8);
  const size_t train_n = all.size() * 9 / 10;
  std::vector<workload::BenchQuery> train(all.begin(),
                                          all.begin() + train_n);
  std::vector<workload::BenchQuery> eval_set(all.begin() + train_n,
                                             all.end());

  pg::PgEstimator pg_est(s.imdb);
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  const auto train_sqls = Sqls(train);
  const auto eval_sqls = Sqls(eval_set);

  baselines::LstmQueryEncoder lstm(32, 24, 3);
  lstm.BuildVocab(train_sqls);
  baselines::ConcatEncoder lstm_bm(&lstm, &bitmap);
  tasks::PreqrEncoder preqr_enc(s.model.get());
  baselines::ConcatEncoder preqr_bm(&preqr_enc, &bitmap);

  for (const bool cost_task : {false, true}) {
    const auto train_targets = cost_task ? Costs(train) : Cards(train);
    const auto truths = cost_task ? Costs(eval_set) : Cards(eval_set);
    const char* suffix = cost_task ? "Cost" : "Card";
    std::printf("\n--- Table %s: %s estimation ---\n",
                cost_task ? "11" : "10", cost_task ? "cost" : "cardinality");
    PrintQErrorHeader("JOB (strings)");
    {
      std::vector<double> est;
      for (const auto& q : eval_set) {
        est.push_back(cost_task ? pg_est.EstimateCost(q.stmt)
                                : pg_est.EstimateCardinality(q.stmt));
      }
      PrintQErrorRow(std::string("PG") + suffix,
                     eval::ComputeQErrors(truths, est));
    }
    {
      tasks::EstimatorModel::Options lopt;
      lopt.epochs = Sized(5, 2);
      lopt.hidden = 96;
      tasks::EstimatorModel model(&lstm_bm, lopt);
      model.Fit(train_sqls, train_targets);
      PrintQErrorRow(std::string("LSTM") + suffix,
                     eval::ComputeQErrors(truths,
                                          model.PredictAll(eval_sqls)));
    }
    {
      tasks::EstimatorModel::Options popt;
      popt.epochs = Sized(8, 2);
      popt.hidden = 128;
      popt.lr = 7e-4f;
      tasks::EstimatorModel model(&preqr_bm, popt);
      model.Fit(train_sqls, train_targets);
      PrintQErrorRow(std::string("PreQR") + suffix,
                     eval::ComputeQErrors(truths,
                                          model.PredictAll(eval_sqls)));
    }
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
