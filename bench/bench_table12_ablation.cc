// Regenerates Table 12: ablation over model composition. BERT = neither
// automaton nor Trm_g; PreQRNT = no query-aware schema transformer;
// PreQRNA = no automaton channel; PreQR = full model. Mean q-errors on
// cardinality and cost for JOB-light / Synthetic / Scale / JOB.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

struct Variant {
  const char* name;
  bool use_automaton;
  bool use_schema;
};

void Run() {
  PrintHeader("Table 12", "ablation over model composition (mean q-error)");
  // Shared data/workloads; each variant pre-trains its own model.
  EstimationSetup s =
      BuildEstimationSetup(BenchConfig(), /*pretrain_epochs=*/0);
  workload::ImdbQueryGenerator gen(s.imdb, 77);
  auto job_all = gen.JobStrings(Sized(180, 40), 4, 8);
  const size_t job_train_n = job_all.size() * 8 / 10;
  std::vector<workload::BenchQuery> job_train(job_all.begin(),
                                              job_all.begin() + job_train_n);
  std::vector<workload::BenchQuery> job_eval(job_all.begin() + job_train_n,
                                             job_all.end());
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);

  std::vector<std::string> corpus = Sqls(s.synthetic_train);
  {
    auto jl = Sqls(s.joblight_train);
    corpus.insert(corpus.end(), jl.begin(), jl.end());
    auto js = Sqls(job_train);
    corpus.insert(corpus.end(), js.begin(), js.end());
  }
  if (corpus.size() > Sized(250u, 60u)) corpus.resize(Sized(250, 60));

  const Variant variants[] = {
      {"BERT", false, false},
      {"PreQRNT", true, false},
      {"PreQRNA", false, true},
      {"PreQR", true, true},
  };

  struct Row {
    std::string name;
    double card[4];
    double cost[4];
  };
  std::vector<Row> rows;

  for (const auto& variant : variants) {
    core::PreqrConfig config = BenchConfig();
    config.d_model = Sized(48, 32);  // four pre-trainings; keep them cheap
    config.ffn_hidden = 2 * config.d_model;
    config.use_automaton = variant.use_automaton;
    config.use_schema = variant.use_schema;
    core::PreqrModel model(config, s.tokenizer.get(), &s.fa, &s.graph, 5);
    core::Pretrainer::Options popt;
    popt.epochs = Sized(2, 1);
    core::Pretrainer pretrainer(model, popt);
    pretrainer.Train(corpus);
    tasks::PreqrEncoder enc(&model);
    baselines::ConcatEncoder enc_bm(&enc, &bitmap);

    Row row;
    row.name = variant.name;
    struct Eval {
      const std::vector<workload::BenchQuery>* train;
      const std::vector<workload::BenchQuery>* eval;
    };
    const Eval evals[] = {
        {&s.joblight_train, &s.joblight_eval},
        {&s.synthetic_train, &s.synthetic_eval},
        {&s.synthetic_train, &s.scale_eval},
        {&job_train, &job_eval},
    };
    for (int e = 0; e < 4; ++e) {
      std::vector<workload::BenchQuery> capped(*evals[e].train);
      if (capped.size() > 250) capped.resize(250);
      for (const bool cost_task : {false, true}) {
        tasks::EstimatorModel::Options opt;
        opt.epochs = Sized(4, 2);
        opt.hidden = 96;
        opt.lr = 7e-4f;
        tasks::EstimatorModel est(&enc_bm, opt);
        est.Fit(Sqls(capped), cost_task ? Costs(capped) : Cards(capped));
        const auto truths =
            cost_task ? Costs(*evals[e].eval) : Cards(*evals[e].eval);
        const double mean =
            eval::ComputeQErrors(truths, est.PredictAll(Sqls(*evals[e].eval)))
                .mean;
        (cost_task ? row.cost : row.card)[e] = mean;
      }
    }
    rows.push_back(std::move(row));
  }

  std::printf("\n[cardinality estimation, mean q-error]\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "method", "JOB-light",
              "Synthetic", "Scale", "JOB");
  for (const auto& row : rows) {
    std::printf("%-12s %10.2f %10.2f %10.2f %10.2f\n",
                (row.name + "Card").c_str(), row.card[0], row.card[1],
                row.card[2], row.card[3]);
  }
  std::printf("\n[cost estimation, mean q-error]\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "method", "JOB-light",
              "Synthetic", "Scale", "JOB");
  for (const auto& row : rows) {
    std::printf("%-12s %10.2f %10.2f %10.2f %10.2f\n",
                (row.name + "Cost").c_str(), row.cost[0], row.cost[1],
                row.cost[2], row.cost[3]);
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
