// Regenerates Figure 8: validation mean q-error per training epoch on the
// Synthetic workload, for cardinality (a) and cost (b), with and without
// the bitmap-sampling optimization ("NS" prefix = no sampling). The paper's
// claims: sampling helps every method, and PreQR wins even without it.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "baselines/onehot.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

void PrintCurve(const std::string& name, const std::vector<double>& curve) {
  std::printf("%-14s", name.c_str());
  for (double v : curve) std::printf(" %7.2f", v);
  std::printf("\n");
}

void Run() {
  PrintHeader("Figure 8",
              "validation error per epoch on Synthetic (NS = no sampling)");
  EstimationSetup s = BuildEstimationSetup(BenchConfig());
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  const auto train_sqls = Sqls(s.synthetic_train);
  const auto val_sqls = Sqls(s.synthetic_eval);
  const int epochs = Sized(8, 3);

  for (const bool cost_task : {false, true}) {
    std::printf("\n[(%c) %s validation mean q-error per epoch]\n",
                cost_task ? 'b' : 'a', cost_task ? "cost" : "cardinality");
    std::printf("%-14s", "epoch");
    for (int e = 1; e <= epochs; ++e) std::printf(" %7d", e);
    std::printf("\n");
    const auto train_targets =
        cost_task ? Costs(s.synthetic_train) : Cards(s.synthetic_train);
    const auto val_targets =
        cost_task ? Costs(s.synthetic_eval) : Cards(s.synthetic_eval);

    // MSCN with and without bitmap sampling.
    {
      baselines::OneHotEncoder with_bm(s.imdb, &sampler);
      tasks::EstimatorModel::Options opt;
      opt.epochs = epochs;
      tasks::EstimatorModel model(&with_bm, opt);
      PrintCurve("MSCN", model.FitWithValidation(train_sqls, train_targets,
                                                 val_sqls, val_targets));
    }
    {
      baselines::OneHotEncoder no_bm(s.imdb, nullptr);
      tasks::EstimatorModel::Options opt;
      opt.epochs = epochs;
      tasks::EstimatorModel model(&no_bm, opt);
      PrintCurve("NS-MSCN", model.FitWithValidation(train_sqls, train_targets,
                                                    val_sqls, val_targets));
    }
    // PreQR with and without bitmap sampling.
    {
      tasks::PreqrEncoder enc(s.model.get());
      baselines::ConcatEncoder with_bm(&enc, &bitmap);
      tasks::EstimatorModel::Options opt;
      opt.epochs = epochs;
      opt.hidden = 128;
      opt.lr = 7e-4f;
      tasks::EstimatorModel model(&with_bm, opt);
      PrintCurve("PreQR", model.FitWithValidation(train_sqls, train_targets,
                                                  val_sqls, val_targets));
    }
    {
      tasks::PreqrEncoder enc(s.model.get());
      tasks::EstimatorModel::Options opt;
      opt.epochs = epochs;
      opt.hidden = 128;
      opt.lr = 7e-4f;
      tasks::EstimatorModel model(&enc, opt);
      PrintCurve("NS-PreQR", model.FitWithValidation(train_sqls, train_targets,
                                                     val_sqls, val_targets));
    }
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
