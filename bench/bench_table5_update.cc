// Regenerates Table 5: relative update cost of the four model-maintenance
// cases (Section 3.6). Wall-clock of one representative update round per
// case; the paper's ordering (Case 1 << Case 2 < Case 3 < Case 4) is the
// claim under test, not the absolute hours.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/harness.h"

#include "core/pretrain.h"
#include "nn/optim.h"
#include "serving/encoder_service.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

double Seconds(const std::chrono::steady_clock::time_point& a,
               const std::chrono::steady_clock::time_point& b) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count() /
         1000.0;
}

void Run() {
  PrintHeader("Table 5", "update cost of the PreQR model");
  core::PreqrConfig config = BenchConfig();
  EstimationSetup s = BuildEstimationSetup(config, /*pretrain_epochs=*/0);
  auto corpus = Sqls(s.synthetic_train);
  if (corpus.size() > 200) corpus.resize(200);
  const int sample_rounds = Sized(1, 1);

  core::Pretrainer::Options opt;
  opt.epochs = sample_rounds;

  // A serving front-end caches one probe embedding before any update round;
  // every maintenance case below changes model parameters, so the cached
  // bits go stale. The refresh goes the way a production deployment would:
  // the updated weights are checkpointed to disk and hot-reloaded via
  // ReloadModel (which swaps under the encode mutex and drops the cache),
  // rather than mutated in place under the service's feet.
  tasks::PreqrEncoder serving_encoder(s.model.get());
  serving::EncoderService service(&serving_encoder);
  service.AttachModel(s.model.get());
  const std::string probe = corpus.front();
  auto probe_before = service.Encode(probe);

  std::printf("%-8s %-52s %9s\n", "case", "description", "seconds");

  // Case 4 first (from scratch): full pre-training pass over the corpus.
  double case4;
  {
    const auto t0 = std::chrono::steady_clock::now();
    core::Pretrainer trainer(*s.model, opt);
    trainer.Train(corpus);
    case4 = Seconds(t0, std::chrono::steady_clock::now());
  }

  // Case 1: data distribution changed -> incremental training of the last
  // SQLBERT layer only (a few samples).
  double case1;
  {
    std::vector<std::string> samples(corpus.begin(),
                                     corpus.begin() + corpus.size() / 8);
    const auto t0 = std::chrono::steady_clock::now();
    nn::Adam adam(s.model->LastLayerParameters(), 1e-3f);
    nn::Tensor schema = s.model->EncodeSchemaNodes(/*with_grad=*/false);
    for (const auto& sql : samples) {
      auto tokenized = s.model->tokenizer().Tokenize(sql);
      if (!tokenized.ok()) continue;
      adam.ZeroGrad();
      nn::Tensor prefix = s.model->EncodePrefix(tokenized.value(), schema);
      auto enc = s.model->LastLayer(prefix, schema);
      nn::Tensor logits = s.model->MlmLogits(enc.tokens);
      std::vector<int> targets(tokenized.value().ids.begin(),
                               tokenized.value().ids.begin() + logits.dim(0));
      nn::CrossEntropy(logits, targets, -1).Backward();
      adam.Step();
    }
    case1 = Seconds(t0, std::chrono::steady_clock::now());
  }

  // Case 2: schema updated -> incremental training of the Schema2Graph
  // parameters (name encoder + R-GCN) against the MLM objective.
  double case2;
  {
    std::vector<std::string> samples(corpus.begin(),
                                     corpus.begin() + corpus.size() / 4);
    const auto t0 = std::chrono::steady_clock::now();
    nn::Adam adam(s.model->SchemaParameters(), 1e-3f);
    for (size_t i = 0; i < samples.size(); i += 8) {
      adam.ZeroGrad();
      nn::Tensor schema = s.model->EncodeSchemaNodes(/*with_grad=*/true);
      for (size_t j = i; j < std::min(samples.size(), i + 8); ++j) {
        auto tokenized = s.model->tokenizer().Tokenize(samples[j]);
        if (!tokenized.ok()) continue;
        auto enc = s.model->Forward(tokenized.value(), schema);
        nn::Tensor logits = s.model->MlmLogits(enc.tokens);
        std::vector<int> targets(tokenized.value().ids.begin(),
                                 tokenized.value().ids.begin() +
                                     logits.dim(0));
        nn::CrossEntropy(logits, targets, -1).Backward();
      }
      adam.Step();
    }
    case2 = Seconds(t0, std::chrono::steady_clock::now());
  }

  // Case 3: query patterns changed -> rebuild the FA and retrain the Input
  // Embedding module (token/state/position embeddings + projection).
  double case3;
  {
    const auto t0 = std::chrono::steady_clock::now();
    automaton::TemplateExtractor extractor(0.2);
    automaton::Automaton fa = extractor.BuildAutomaton(corpus);
    (void)fa;
    nn::Adam adam(s.model->InputParameters(), 1e-3f);
    nn::Tensor schema = s.model->EncodeSchemaNodes(/*with_grad=*/false);
    for (size_t i = 0; i + 1 < corpus.size(); i += 1) {
      auto tokenized = s.model->tokenizer().Tokenize(corpus[i]);
      if (!tokenized.ok()) continue;
      adam.ZeroGrad();
      auto enc = s.model->Forward(tokenized.value(), schema);
      nn::Tensor logits = s.model->MlmLogits(enc.tokens);
      std::vector<int> targets(tokenized.value().ids.begin(),
                               tokenized.value().ids.begin() + logits.dim(0));
      nn::CrossEntropy(logits, targets, -1).Backward();
      adam.Step();
    }
    case3 = Seconds(t0, std::chrono::steady_clock::now());
  }

  std::printf("%-8s %-52s %9.2f\n", "Case 1",
              "incremental learning, last SQLBERT layer", case1);
  std::printf("%-8s %-52s %9.2f\n", "Case 2",
              "incremental learning, Schema2Graph part", case2);
  std::printf("%-8s %-52s %9.2f\n", "Case 3",
              "incremental learning, Input Embedding module", case3);
  std::printf("%-8s %-52s %9.2f\n", "Case 4", "train from scratch", case4);

  // After the update rounds the serving cache is stale. Run the Table-5
  // deployment loop end to end: checkpoint the updated model (atomic PRC1
  // write), hot-reload it into the serving stack, then re-serve the probe
  // and report how far the embedding moved (the drift the stale cache
  // would have kept serving).
  const std::string ckpt = "/tmp/preqr_table5_update.ckpt";
  {
    core::Pretrainer checkpointer(*s.model, core::Pretrainer::Options{});
    const auto t0 = std::chrono::steady_clock::now();
    if (auto st = checkpointer.SaveCheckpoint(ckpt); !st.ok()) {
      std::printf("checkpoint save FAILED: %s\n", st.ToString().c_str());
    }
    if (auto st = service.ReloadModel(ckpt); !st.ok()) {
      std::printf("hot reload FAILED: %s\n", st.ToString().c_str());
    }
    std::printf("\nserving: checkpoint + hot reload took %.3f s (PRC1 -> %s)\n",
                Seconds(t0, std::chrono::steady_clock::now()), ckpt.c_str());
  }
  std::remove(ckpt.c_str());
  auto probe_after = service.Encode(probe);
  if (probe_before.ok() && probe_after.ok()) {
    const auto& a = probe_before.value().vec();
    const auto& b = probe_after.value().vec();
    double l2 = 0;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
      l2 += d * d;
    }
    std::printf("\nserving: probe embedding L2 drift after updates %.4f "
                "(stale cache dropped by the checkpoint hot reload)\n",
                std::sqrt(l2));
  }
  std::printf("serving: hit-rate %.2f over %llu requests, %llu invalidation(s)\n",
              service.metrics().CacheHitRate(),
              static_cast<unsigned long long>(service.metrics().requests.value()),
              static_cast<unsigned long long>(
                  service.metrics().invalidations.value()));
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
