#ifndef PREQR_BENCH_CLUSTERING_HARNESS_H_
#define PREQR_BENCH_CLUSTERING_HARNESS_H_

// Shared machinery for the query-clustering experiments (Table 7 and
// Figure 7): builds pairwise distance matrices for the six similarity
// methods of Section 4.3.1 over an arbitrary workload + schema.

#include <memory>
#include <string>
#include <vector>

#include "automaton/template_extractor.h"
#include "baselines/lstm_encoder.h"
#include "baselines/onehot.h"
#include "bench/harness.h"
#include "core/pretrain.h"
#include "sql/lexer.h"
#include "tasks/clustering.h"
#include "tasks/preqr_encoder.h"
#include "tasks/sql2text.h"
#include "workload/sql2text.h"

namespace preqr::bench {

struct MethodDistances {
  std::string method;
  std::vector<std::vector<double>> distance;
};

// Computes distance matrices for all six methods. `data_db` may be null
// (schema-only workloads); the one-hot featurizer then runs without value
// ranges / bitmaps, and the PreQR tokenizer without statistics.
inline std::vector<MethodDistances> AllMethodDistances(
    const std::vector<std::string>& queries, const sql::Catalog& catalog,
    const db::Database* data_db, uint64_t seed = 9) {
  std::vector<MethodDistances> out;
  const auto stmts = tasks::ParseAll(queries);
  out.push_back({"Aouiche",
                 tasks::AstDistanceMatrix(stmts, tasks::AstMetric::kAouiche)});
  out.push_back({"Aligon",
                 tasks::AstDistanceMatrix(stmts, tasks::AstMetric::kAligon)});
  out.push_back(
      {"Makiyama",
       tasks::AstDistanceMatrix(stmts, tasks::AstMetric::kMakiyama)});

  // One-hotDis.
  std::unique_ptr<db::Database> empty_db;
  const db::Database* db_for_onehot = data_db;
  if (db_for_onehot == nullptr) {
    empty_db = std::make_unique<db::Database>();
    for (const auto& table : catalog.tables()) {
      empty_db->AddTable(table).Seal();
    }
    for (const auto& fk : catalog.foreign_keys()) {
      (void)empty_db->catalog().AddForeignKey(fk);
    }
    db_for_onehot = empty_db.get();
  }
  baselines::OneHotEncoder onehot(*db_for_onehot, /*sampler=*/nullptr);
  out.push_back({"One-hotDis",
                 tasks::EmbeddingDistanceMatrix(queries, onehot)});

  // Seq2SeqDis: an attention Seq2Seq auto-encoder trained on the workload;
  // the encoder summary is the query embedding.
  {
    baselines::LstmQueryEncoder lstm(32, 24, seed);
    lstm.BuildVocab(queries);
    std::vector<workload::TextPair> auto_pairs;
    for (const auto& q : queries) {
      workload::TextPair pair;
      pair.sql = q;
      auto lexed = sql::Lex(q);
      if (lexed.ok()) {
        for (const auto& tok : lexed.value()) {
          if (tok.type != sql::TokenType::kEnd) pair.text.push_back(tok.text);
        }
      }
      if (pair.text.size() > 18) pair.text.resize(18);
      auto_pairs.push_back(std::move(pair));
    }
    tasks::Sql2TextModel::Options opt;
    opt.epochs = Sized(3, 1);
    opt.dim = 32;
    tasks::Sql2TextModel autoencoder(&lstm, opt);
    autoencoder.Fit(auto_pairs);
    out.push_back({"Seq2SeqDis",
                   tasks::EmbeddingDistanceMatrix(queries, lstm)});
  }

  // PreQRDis: a small PreQR pre-trained on this workload's queries.
  {
    std::vector<db::TableStats> stats;
    if (data_db != nullptr) {
      db::StatsCollector collector;
      stats = collector.AnalyzeAll(*data_db);
    }
    auto tokenizer =
        std::make_unique<text::SqlTokenizer>(catalog, stats, 8);
    automaton::TemplateExtractor extractor(0.2);
    automaton::Automaton fa = extractor.BuildAutomaton(queries);
    schema::SchemaGraph graph = schema::SchemaGraph::Build(catalog);
    core::PreqrConfig config;
    config.d_model = Sized(48, 32);
    config.ffn_hidden = 2 * config.d_model;
    core::PreqrModel model(config, tokenizer.get(), &fa, &graph, seed + 1);
    core::Pretrainer::Options popt;
    popt.epochs = Sized(4, 1);
    core::Pretrainer pretrainer(model, popt);
    pretrainer.Train(queries);
    tasks::PreqrEncoder encoder(&model);
    out.push_back({"PreQRDis",
                   tasks::EmbeddingDistanceMatrix(queries, encoder)});
  }
  return out;
}

}  // namespace preqr::bench

#endif  // PREQR_BENCH_CLUSTERING_HARNESS_H_
