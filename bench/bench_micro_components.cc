// Micro-benchmarks (google-benchmark) for the hot components: SQL lexing /
// parsing, automaton matching, tokenization, executor counting, PreQR
// encoding, and the parallel tensor kernels (MatMul, attention, layer norm).
// These back the paper's claim that FA construction and matching incur
// negligible cost (Section 3.3.1). Kernel benches honour PREQR_NUM_THREADS;
// run with =1 and =4 to measure the thread-pool speedup.
#include <benchmark/benchmark.h>

#include "automaton/template_extractor.h"
#include "common/thread_pool.h"
#include "core/preqr_model.h"
#include "db/executor.h"
#include "db/stats.h"
#include "nn/buffer_pool.h"
#include "nn/kernels.h"
#include "nn/kernels_dispatch.h"
#include "nn/module.h"
#include "nn/quant.h"
#include "nn/ops.h"
#include "schema/schema_graph.h"
#include "serving/encoder_service.h"
#include "sql/parser.h"
#include "tasks/preqr_encoder.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr {
namespace {

const char* kQuery =
    "SELECT COUNT(*) FROM title t, movie_companies mc, movie_info mi "
    "WHERE t.id = mc.movie_id AND t.id = mi.movie_id "
    "AND t.production_year > 2010 AND mc.company_type_id = 1";

struct Shared {
  db::Database imdb = workload::MakeImdbDatabase(42, 0.1);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::unique_ptr<core::PreqrModel> model;
  sql::SelectStatement stmt;

  Shared() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 1);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(
        [&] {
          std::vector<std::string> corpus;
          for (const auto& q : gen.Synthetic(60, 2)) corpus.push_back(q.sql);
          return corpus;
        }());
    graph = schema::SchemaGraph::Build(imdb.catalog());
    core::PreqrConfig config;
    config.d_model = 32;
    model = std::make_unique<core::PreqrModel>(config, tokenizer.get(), &fa,
                                               &graph);
    stmt = sql::Parse(kQuery).value();
  }
};

Shared& S() {
  static Shared* shared = new Shared();
  return *shared;
}

void BM_LexAndParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(kQuery));
  }
}
BENCHMARK(BM_LexAndParse);

void BM_AutomatonMatch(benchmark::State& state) {
  const auto symbols = automaton::StructuralSymbols(kQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().fa.Match(symbols));
  }
}
BENCHMARK(BM_AutomatonMatch);

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().tokenizer->Tokenize(kQuery));
  }
}
BENCHMARK(BM_Tokenize);

void BM_ExecutorCount(benchmark::State& state) {
  db::Executor exec(S().imdb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(S().stmt));
  }
}
BENCHMARK(BM_ExecutorCount);

void BM_PreqrEncode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().model->Encode(kQuery));
  }
}
BENCHMARK(BM_PreqrEncode);

// --- Grad-mode / storage layer ------------------------------------------
// The same encoder forward with the tape on vs. off. The no-grad path skips
// every parents/grad_fn allocation and draws activations from the
// thread-local BufferPool; `impls` and `pool_reuse` counters quantify the
// allocation savings per encode (the impls gap is all tape bookkeeping the
// inference path no longer pays for).

void EncodeForwardOnce(tasks::PreqrEncoder& encoder) {
  benchmark::DoNotOptimize(encoder.TryEncodeVector(kQuery, /*train=*/false));
}

void BM_EncodeNoGrad(benchmark::State& state) {
  tasks::PreqrEncoder::Options options;
  options.cache_capacity = 1;  // prefix re-encoded every iteration
  options.cache_shards = 1;
  tasks::PreqrEncoder encoder(S().model.get(), options);
  encoder.InvalidateCache();
  const uint64_t impls0 = nn::TensorImplsCreated();
  const nn::BufferPoolStats pool0 = nn::BufferPool::TotalStats();
  for (auto _ : state) {
    encoder.InvalidateCache();
    EncodeForwardOnce(encoder);
  }
  const nn::BufferPoolStats pool1 = nn::BufferPool::TotalStats();
  const double iters = static_cast<double>(state.iterations());
  state.counters["impls_per_encode"] =
      static_cast<double>(nn::TensorImplsCreated() - impls0) / iters;
  state.counters["pool_reuse_per_encode"] =
      static_cast<double>(pool1.reuses - pool0.reuses) / iters;
  state.counters["heap_allocs_per_encode"] =
      static_cast<double>(pool1.allocs - pool0.allocs) / iters;
}
BENCHMARK(BM_EncodeNoGrad);

void BM_EncodeTapeOn(benchmark::State& state) {
  tasks::PreqrEncoder::Options options;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  tasks::PreqrEncoder encoder(S().model.get(), options);
  encoder.InvalidateCache();
  const uint64_t impls0 = nn::TensorImplsCreated();
  for (auto _ : state) {
    encoder.InvalidateCache();
    // train=true keeps the tape through the read-out; backward not run, so
    // the delta vs. BM_EncodeNoGrad is pure tape + allocation overhead.
    benchmark::DoNotOptimize(encoder.TryEncodeVector(kQuery, /*train=*/true));
  }
  state.counters["impls_per_encode"] =
      static_cast<double>(nn::TensorImplsCreated() - impls0) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_EncodeTapeOn);

// --- Batched vs per-query encode ----------------------------------------
// The padded [B, T, d] path runs each op once per batch instead of once per
// query, so tensor-impl creations (== op dispatches) and pool/heap
// allocations per query must drop vs. the per-query loop at B=8, with
// throughput no worse on a small machine. Caches are invalidated every
// iteration so both sides pay the full prefix + read-out compute.

std::vector<std::string> BatchBenchQueries() {
  std::vector<std::string> queries;
  for (int y = 0; y < 8; ++y) {
    queries.push_back(
        "SELECT COUNT(*) FROM title t WHERE t.production_year > " +
        std::to_string(1990 + y));
  }
  return queries;
}

void BM_EncodeLoop(benchmark::State& state) {
  tasks::PreqrEncoder::Options options;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  tasks::PreqrEncoder encoder(S().model.get(), options);
  const auto queries = BatchBenchQueries();
  const uint64_t impls0 = nn::TensorImplsCreated();
  const nn::BufferPoolStats pool0 = nn::BufferPool::TotalStats();
  for (auto _ : state) {
    encoder.InvalidateCache();
    for (const auto& q : queries) {
      benchmark::DoNotOptimize(encoder.TryEncodeVector(q, /*train=*/false));
    }
  }
  const nn::BufferPoolStats pool1 = nn::BufferPool::TotalStats();
  const double n_queries =
      static_cast<double>(state.iterations()) *
      static_cast<double>(queries.size());
  state.counters["impls_per_query"] =
      static_cast<double>(nn::TensorImplsCreated() - impls0) / n_queries;
  state.counters["pool_reuse_per_query"] =
      static_cast<double>(pool1.reuses - pool0.reuses) / n_queries;
  state.counters["heap_allocs_per_query"] =
      static_cast<double>(pool1.allocs - pool0.allocs) / n_queries;
  state.SetItemsProcessed(static_cast<int64_t>(n_queries));
}
BENCHMARK(BM_EncodeLoop);

void BM_EncodeBatch(benchmark::State& state) {
  tasks::PreqrEncoder::Options options;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  tasks::PreqrEncoder encoder(S().model.get(), options);
  const auto queries = BatchBenchQueries();
  const uint64_t impls0 = nn::TensorImplsCreated();
  const nn::BufferPoolStats pool0 = nn::BufferPool::TotalStats();
  for (auto _ : state) {
    encoder.InvalidateCache();
    benchmark::DoNotOptimize(
        encoder.TryEncodeVectorBatch(queries, /*train=*/false));
  }
  const nn::BufferPoolStats pool1 = nn::BufferPool::TotalStats();
  const double n_queries =
      static_cast<double>(state.iterations()) *
      static_cast<double>(queries.size());
  state.counters["impls_per_query"] =
      static_cast<double>(nn::TensorImplsCreated() - impls0) / n_queries;
  state.counters["pool_reuse_per_query"] =
      static_cast<double>(pool1.reuses - pool0.reuses) / n_queries;
  state.counters["heap_allocs_per_query"] =
      static_cast<double>(pool1.allocs - pool0.allocs) / n_queries;
  state.SetItemsProcessed(static_cast<int64_t>(n_queries));
}
BENCHMARK(BM_EncodeBatch);

// --- Serving layer ------------------------------------------------------
// Cache hit vs cold encode through the EncoderService: the hit path is a
// sharded-LRU lookup plus one tensor copy, the cold path pays the full
// frozen-prefix + last-layer forward. The gap is the serving layer's value
// on a frequent-query workload.

void BM_ServingCacheHit(benchmark::State& state) {
  tasks::PreqrEncoder encoder(S().model.get());
  serving::EncoderService service(&encoder);
  (void)service.Encode(kQuery);  // warm the embedding cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.Encode(kQuery));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServingCacheHit);

// The full request path on a hit — deadline check, admission bookkeeping,
// response metadata — vs the bare-SQL overload above: the cost of the
// request/response contract itself.
void BM_ServingRequestHit(benchmark::State& state) {
  tasks::PreqrEncoder encoder(S().model.get());
  serving::EncoderService service(&encoder);
  (void)service.Encode(kQuery);  // warm the embedding cache
  serving::EncodeRequest request;
  request.sql = kQuery;
  request.client_id = "bench";
  for (auto _ : state) {
    request.deadline = serving::DeadlineAfter(std::chrono::seconds(1));
    benchmark::DoNotOptimize(service.Encode(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServingRequestHit);

void BM_ServingColdEncode(benchmark::State& state) {
  // Both cache layers are sized below the rotation length, so every request
  // misses and pays the full encode.
  tasks::PreqrEncoder::Options encoder_options;
  encoder_options.cache_capacity = 2;
  encoder_options.cache_shards = 1;
  tasks::PreqrEncoder encoder(S().model.get(), encoder_options);
  serving::EncoderServiceOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  serving::EncoderService service(&encoder, options);
  std::vector<std::string> queries;
  for (int y = 0; y < 16; ++y) {
    queries.push_back(
        "SELECT COUNT(*) FROM title t WHERE t.production_year > " +
        std::to_string(1990 + y));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.Encode(queries[i++ % queries.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServingColdEncode);

// --- Parallel tensor kernels -------------------------------------------
// Shapes are sized so the per-row work comfortably exceeds the pool grain;
// with PREQR_NUM_THREADS=1 these run the exact legacy serial path.

// The raw kernel with no Tensor wrapper, tape check, or shape assertion:
// the floor the op-level BM_MatMulForward is measured against.
void BM_MatMulKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  const size_t elems = static_cast<size_t>(n) * static_cast<size_t>(n);
  std::vector<float> a(elems), b(elems), out(elems, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);  // kernel accumulates into out
    nn::kernels::MatMulForward(a.data(), b.data(), out.data(), n, n, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulKernel)->Arg(96)->Arg(192);

// --- Kernel dispatch backends (scalar vs AVX2 vs int8) -------------------
// The same square GEMM through each kernel table directly, so the ISSUE's
// AVX2-over-scalar speedup is measured at the kernel floor with no
// dispatch-table indirection in the loop body.

void MatMulImplBench(benchmark::State& state,
                     const nn::kernels::KernelTable& table) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  const size_t elems = static_cast<size_t>(n) * static_cast<size_t>(n);
  std::vector<float> a(elems), b(elems), out(elems, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    table.MatMulForward(a.data(), b.data(), out.data(), n, n, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}

void BM_MatMulKernelScalar(benchmark::State& state) {
  MatMulImplBench(state, nn::kernels::ScalarTable());
}
BENCHMARK(BM_MatMulKernelScalar)->Arg(96)->Arg(192);

void BM_MatMulKernelAvx2(benchmark::State& state) {
  if (!nn::kernels::Avx2Supported()) {
    state.SkipWithError("AVX2+FMA unavailable on this host");
    return;
  }
  MatMulImplBench(state, *nn::kernels::Avx2Table());
}
BENCHMARK(BM_MatMulKernelAvx2)->Arg(96)->Arg(192);

// The int8 path pays per-row activation quantization inside the loop, as
// the encode path does.
void BM_MatMulKernelInt8(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(10);
  nn::Tensor w = nn::Tensor::Randn({n, n}, rng, 1.0f);
  auto qw = nn::quant::QuantizeWeight(w);
  const size_t elems = static_cast<size_t>(n) * static_cast<size_t>(n);
  std::vector<float> a(elems), out(elems, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    nn::quant::Int8MatMulForward(a.data(), *qw, out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulKernelInt8)->Arg(96)->Arg(192);

// End-to-end no-grad encode under a forced kernel impl / the int8 path:
// the serving-visible form of the same speedup.
void EncodeNoGradImplBench(benchmark::State& state, const char* impl,
                           bool use_int8) {
  const char* entry_impl = nn::kernels::ActiveImplName();
  if (!nn::kernels::SetActiveImpl(impl)) {
    state.SkipWithError("kernel impl unavailable on this host");
    return;
  }
  {
    tasks::PreqrEncoder::Options options;
    options.cache_capacity = 1;
    options.cache_shards = 1;
    options.use_int8 = use_int8;
    tasks::PreqrEncoder encoder(S().model.get(), options);
    for (auto _ : state) {
      encoder.InvalidateCache();
      EncodeForwardOnce(encoder);
    }
  }
  nn::kernels::SetActiveImpl(entry_impl);
}

void BM_EncodeNoGradScalar(benchmark::State& state) {
  EncodeNoGradImplBench(state, "scalar", /*use_int8=*/false);
}
BENCHMARK(BM_EncodeNoGradScalar);

void BM_EncodeNoGradAvx2(benchmark::State& state) {
  EncodeNoGradImplBench(state, "avx2", /*use_int8=*/false);
}
BENCHMARK(BM_EncodeNoGradAvx2);

void BM_EncodeNoGradInt8(benchmark::State& state) {
  EncodeNoGradImplBench(
      state, nn::kernels::Avx2Supported() ? "avx2" : "scalar",
      /*use_int8=*/true);
}
BENCHMARK(BM_EncodeNoGradInt8);

void BM_MatMulForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  nn::Tensor a = nn::Tensor::Randn({n, n}, rng, 1.0f);
  nn::Tensor b = nn::Tensor::Randn({n, n}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulForward)->Arg(96)->Arg(192);

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  for (auto _ : state) {
    state.PauseTiming();
    nn::Tensor a = nn::Tensor::Randn({n, n}, rng, 1.0f, true);
    nn::Tensor b = nn::Tensor::Randn({n, n}, rng, 1.0f, true);
    nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
    state.ResumeTiming();
    loss.Backward();
  }
  state.SetItemsProcessed(state.iterations() * 4LL * n * n * n);
}
BENCHMARK(BM_MatMulBackward)->Arg(96)->Arg(192);

void BM_AttentionSoftmaxRows(benchmark::State& state) {
  Rng rng(13);
  nn::Tensor x = nn::Tensor::Randn({512, 512}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::SoftmaxLastDim(x));
  }
}
BENCHMARK(BM_AttentionSoftmaxRows);

void BM_MultiHeadAttention(benchmark::State& state) {
  Rng rng(14);
  nn::MultiHeadAttention attn(64, 4, rng);
  nn::Tensor q = nn::Tensor::Randn({128, 64}, rng, 1.0f);
  nn::Tensor kv = nn::Tensor::Randn({128, 64}, rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(q, kv));
  }
}
BENCHMARK(BM_MultiHeadAttention);

void BM_LayerNormRows(benchmark::State& state) {
  Rng rng(15);
  nn::Tensor x = nn::Tensor::Randn({512, 256}, rng, 1.0f);
  nn::Tensor gamma = nn::Tensor::Full({256}, 1.0f);
  nn::Tensor beta = nn::Tensor::Full({256}, 0.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::LayerNormOp(x, gamma, beta));
  }
}
BENCHMARK(BM_LayerNormRows);

void BM_EmbeddingScatterBackward(benchmark::State& state) {
  Rng rng(16);
  std::vector<int> ids;
  ids.reserve(2048);
  for (int i = 0; i < 2048; ++i) ids.push_back(rng.NextInt(0, 512));
  for (auto _ : state) {
    state.PauseTiming();
    nn::Tensor w = nn::Tensor::Randn({512, 64}, rng, 1.0f, true);
    nn::Tensor loss = nn::Sum(nn::Gather(w, ids));
    state.ResumeTiming();
    loss.Backward();
  }
}
BENCHMARK(BM_EmbeddingScatterBackward);

}  // namespace
}  // namespace preqr

BENCHMARK_MAIN();
