// Micro-benchmarks (google-benchmark) for the hot components: SQL lexing /
// parsing, automaton matching, tokenization, executor counting, and PreQR
// encoding. These back the paper's claim that FA construction and matching
// incur negligible cost (Section 3.3.1).
#include <benchmark/benchmark.h>

#include "automaton/template_extractor.h"
#include "core/preqr_model.h"
#include "db/executor.h"
#include "db/stats.h"
#include "schema/schema_graph.h"
#include "sql/parser.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr {
namespace {

const char* kQuery =
    "SELECT COUNT(*) FROM title t, movie_companies mc, movie_info mi "
    "WHERE t.id = mc.movie_id AND t.id = mi.movie_id "
    "AND t.production_year > 2010 AND mc.company_type_id = 1";

struct Shared {
  db::Database imdb = workload::MakeImdbDatabase(42, 0.1);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::unique_ptr<core::PreqrModel> model;
  sql::SelectStatement stmt;

  Shared() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 1);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(
        [&] {
          std::vector<std::string> corpus;
          for (const auto& q : gen.Synthetic(60, 2)) corpus.push_back(q.sql);
          return corpus;
        }());
    graph = schema::SchemaGraph::Build(imdb.catalog());
    core::PreqrConfig config;
    config.d_model = 32;
    model = std::make_unique<core::PreqrModel>(config, tokenizer.get(), &fa,
                                               &graph);
    stmt = sql::Parse(kQuery).value();
  }
};

Shared& S() {
  static Shared* shared = new Shared();
  return *shared;
}

void BM_LexAndParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(kQuery));
  }
}
BENCHMARK(BM_LexAndParse);

void BM_AutomatonMatch(benchmark::State& state) {
  const auto symbols = automaton::StructuralSymbols(kQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().fa.Match(symbols));
  }
}
BENCHMARK(BM_AutomatonMatch);

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().tokenizer->Tokenize(kQuery));
  }
}
BENCHMARK(BM_Tokenize);

void BM_ExecutorCount(benchmark::State& state) {
  db::Executor exec(S().imdb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(S().stmt));
  }
}
BENCHMARK(BM_ExecutorCount);

void BM_PreqrEncode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(S().model->Encode(kQuery));
  }
}
BENCHMARK(BM_PreqrEncode);

}  // namespace
}  // namespace preqr

BENCHMARK_MAIN();
