// Regenerates Table 3: number of query templates extracted per dataset.
// Small template counts mean the merged automaton stays cheap to build and
// match (Section 3.3.1).
#include "bench/harness.h"

#include "workload/ch.h"
#include "workload/clustering_workloads.h"
#include "workload/sql2text.h"

namespace preqr::bench {
namespace {

int CountTemplates(const std::vector<std::string>& queries) {
  automaton::TemplateExtractor extractor(0.2);
  return static_cast<int>(extractor.Extract(queries).templates.size());
}

void Run() {
  PrintHeader("Table 3", "number of query templates per dataset");
  db::Database imdb = workload::MakeImdbDatabase(42, DbScale());
  workload::ImdbQueryGenerator gen(imdb, 1);

  std::printf("%-16s %10s %10s\n", "dataset", "queries", "templates");
  auto row = [](const char* name, const std::vector<std::string>& queries) {
    std::printf("%-16s %10zu %10d\n", name, queries.size(),
                CountTemplates(queries));
  };

  row("JOB-light", Sqls(gen.JobLight()));
  row("Synthetic", Sqls(gen.Synthetic(Sized(400, 60), 2)));
  row("Scale", Sqls(gen.Scale(Sized(30, 6), 4)));
  row("JOB", Sqls(gen.JobStrings(Sized(120, 20), 4, 8)));

  {
    auto pairs = workload::MakeWikiSqlDataset(Sized(300, 50));
    std::vector<std::string> queries;
    for (const auto& p : pairs) queries.push_back(p.sql);
    row("WikiSQL", queries);
  }
  {
    auto pairs = workload::MakeStackOverflowDataset(Sized(300, 50));
    std::vector<std::string> queries;
    for (const auto& p : pairs) queries.push_back(p.sql);
    row("StackOverflow", queries);
  }
  row("IIT Bombay", workload::MakeIitBombayWorkload().queries);
  row("UB Exam", workload::MakeUbExamWorkload().queries);
  row("PocketData", workload::MakePocketDataWorkload().queries);
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
