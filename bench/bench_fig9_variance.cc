// Regenerates Figure 9: q-error dispersion on JOB-light (box-plot summary
// statistics). The paper's claim: PreQR's errors stay within a small range
// while the one-hot (MSCN) models are far more unstable.
#include "bench/harness.h"

#include "baselines/feature_encoders.h"
#include "baselines/lstm_encoder.h"
#include "baselines/onehot.h"
#include "tasks/estimator.h"
#include "tasks/preqr_encoder.h"

namespace preqr::bench {
namespace {

void PrintBox(const std::string& name, std::vector<double> errs) {
  std::sort(errs.begin(), errs.end());
  const auto pct = [&](double p) {
    return errs[static_cast<size_t>(p * (errs.size() - 1))];
  };
  std::printf("%-12s %8.2f %8.2f %8.2f %8.2f %9.2f\n", name.c_str(), pct(0.0),
              pct(0.25), pct(0.5), pct(0.75), errs.back());
}

void Run() {
  PrintHeader("Figure 9", "q-error dispersion on JOB-light (box stats)");
  EstimationSetup s = BuildEstimationSetup(BenchConfig());
  db::BitmapSampler sampler(s.imdb, 64);
  baselines::BitmapFeatureEncoder bitmap(&sampler);
  const auto train_sqls = Sqls(s.joblight_train);
  const auto eval_sqls = Sqls(s.joblight_eval);

  std::printf("\n%-12s %8s %8s %8s %8s %9s\n", "method", "min", "q1",
              "median", "q3", "max");
  for (const bool cost_task : {false, true}) {
    std::printf("--- %s ---\n", cost_task ? "cost" : "cardinality");
    const auto train_targets =
        cost_task ? Costs(s.joblight_train) : Cards(s.joblight_train);
    const auto truths =
        cost_task ? Costs(s.joblight_eval) : Cards(s.joblight_eval);
    const auto errors = [&](const std::vector<double>& est) {
      std::vector<double> errs;
      for (size_t i = 0; i < est.size(); ++i) {
        errs.push_back(eval::QError(truths[i], est[i]));
      }
      return errs;
    };
    {
      baselines::OneHotEncoder onehot(s.imdb, &sampler);
      tasks::EstimatorModel::Options opt;
      opt.epochs = Sized(20, 5);
      tasks::EstimatorModel model(&onehot, opt);
      model.Fit(train_sqls, train_targets);
      PrintBox("MSCN", errors(model.PredictAll(eval_sqls)));
    }
    {
      baselines::LstmQueryEncoder lstm(32, 24, 3);
      lstm.BuildVocab(train_sqls);
      baselines::ConcatEncoder enc(&lstm, &bitmap);
      tasks::EstimatorModel::Options opt;
      opt.epochs = Sized(4, 2);
      tasks::EstimatorModel model(&enc, opt);
      model.Fit(train_sqls, train_targets);
      PrintBox("LSTM", errors(model.PredictAll(eval_sqls)));
    }
    {
      tasks::PreqrEncoder enc(s.model.get());
      baselines::ConcatEncoder enc_bm(&enc, &bitmap);
      tasks::EstimatorModel::Options opt;
      opt.epochs = Sized(8, 2);
      opt.hidden = 128;
      opt.lr = 7e-4f;
      tasks::EstimatorModel model(&enc_bm, opt);
      model.Fit(train_sqls, train_targets);
      PrintBox("PreQR", errors(model.PredictAll(eval_sqls)));
    }
  }
}

}  // namespace
}  // namespace preqr::bench

int main() {
  preqr::bench::Run();
  return 0;
}
