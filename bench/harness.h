#ifndef PREQR_BENCH_HARNESS_H_
#define PREQR_BENCH_HARNESS_H_

// Shared scaffolding for the experiment harnesses (one binary per paper
// table/figure). Each binary regenerates its table: workload generation,
// training, evaluation, and paper-style output rows.
//
// Environment knobs:
//   PREQR_BENCH_FAST=1   shrink all sizes (smoke-test mode)
//   PREQR_BENCH_SCALE=x  multiply database scale (default 0.22)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "automaton/template_extractor.h"
#include "common/thread_pool.h"
#include "core/preqr_model.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "eval/metrics.h"
#include "schema/schema_graph.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::bench {

inline bool FastMode() {
  const char* env = std::getenv("PREQR_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline double DbScale() {
  const char* env = std::getenv("PREQR_BENCH_SCALE");
  if (env != nullptr) return std::atof(env);
  return FastMode() ? 0.08 : 0.22;
}

// Scales a size knob down in fast mode.
inline int Sized(int normal, int fast) { return FastMode() ? fast : normal; }

// Everything the estimation benches share: database, statistics, tokenizer,
// automaton, schema graph, and a pre-trained PreQR model.
struct EstimationSetup {
  db::Database imdb;
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::unique_ptr<core::PreqrModel> model;

  std::vector<workload::BenchQuery> synthetic_train;
  std::vector<workload::BenchQuery> synthetic_eval;
  std::vector<workload::BenchQuery> scale_eval;
  std::vector<workload::BenchQuery> joblight_train;
  std::vector<workload::BenchQuery> joblight_eval;
};

inline std::vector<std::string> Sqls(
    const std::vector<workload::BenchQuery>& qs) {
  std::vector<std::string> out;
  out.reserve(qs.size());
  for (const auto& q : qs) out.push_back(q.sql);
  return out;
}

inline std::vector<double> Cards(
    const std::vector<workload::BenchQuery>& qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const auto& q : qs) out.push_back(q.true_card);
  return out;
}

inline std::vector<double> Costs(
    const std::vector<workload::BenchQuery>& qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const auto& q : qs) out.push_back(q.true_cost);
  return out;
}

// Builds the shared setup. `pretrain_epochs` <= 0 skips pre-training (for
// benches that pre-train variants themselves).
inline EstimationSetup BuildEstimationSetup(core::PreqrConfig config,
                                            int pretrain_epochs = 3,
                                            uint64_t seed = 42) {
  EstimationSetup s{.imdb = workload::MakeImdbDatabase(seed, DbScale()),
                    .stats = {},
                    .tokenizer = nullptr,
                    .fa = {},
                    .graph = {},
                    .model = nullptr};
  workload::ImdbQueryGenerator gen(s.imdb, seed + 1);
  s.synthetic_train = gen.Synthetic(Sized(400, 80), 2);
  s.synthetic_eval = gen.Synthetic(Sized(120, 30), 2);
  s.scale_eval = gen.Scale(Sized(25, 6), 4);
  s.joblight_train = gen.JobLightTrain(Sized(400, 80));
  s.joblight_eval = gen.JobLight();

  db::StatsCollector collector;
  s.stats = collector.AnalyzeAll(s.imdb);
  s.tokenizer = std::make_unique<text::SqlTokenizer>(s.imdb.catalog(),
                                                     s.stats, 16);
  // Templates from the frequent-query corpus (synthetic + multi-join).
  std::vector<std::string> corpus = Sqls(s.synthetic_train);
  {
    auto jl = Sqls(s.joblight_train);
    corpus.insert(corpus.end(), jl.begin(), jl.end());
  }
  if (corpus.size() > 350) corpus.resize(350);
  automaton::TemplateExtractor extractor(0.2);
  s.fa = extractor.BuildAutomaton(corpus);
  s.graph = schema::SchemaGraph::Build(s.imdb.catalog());
  s.model = std::make_unique<core::PreqrModel>(config, s.tokenizer.get(),
                                               &s.fa, &s.graph, seed + 2);
  if (pretrain_epochs > 0) {
    core::Pretrainer::Options opt;
    opt.epochs = FastMode() ? 1 : pretrain_epochs;
    core::Pretrainer pretrainer(*s.model, opt);
    pretrainer.Train(corpus);
  }
  return s;
}

// Default scaled-down PreQR configuration for the benches.
inline core::PreqrConfig BenchConfig() {
  core::PreqrConfig config;
  config.d_model = FastMode() ? 32 : 80;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_hidden = 2 * config.d_model;
  return config;
}

// --- Output helpers -----------------------------------------------------

inline void PrintHeader(const char* table, const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", table, description);
  std::printf("(synthetic substrate: absolute numbers differ from the paper;"
              " compare relative ordering)\n");
  std::printf("threads: %d (override with PREQR_NUM_THREADS)\n",
              ThreadPool::Global().num_threads());
  std::printf("==========================================================\n");
}

inline void PrintQErrorHeader(const char* workload) {
  std::printf("\n[%s]\n", workload);
  std::printf("%-18s %8s %8s %8s %8s %9s %8s\n", "method", "median", "90th",
              "95th", "99th", "max", "mean");
}

inline void PrintQErrorRow(const std::string& name,
                           const eval::QErrorStats& s) {
  std::printf("%-18s %8.2f %8.2f %8.2f %8.2f %9.1f %8.2f\n", name.c_str(),
              s.median, s.p90, s.p95, s.p99, s.max, s.mean);
}

}  // namespace preqr::bench

#endif  // PREQR_BENCH_HARNESS_H_
